package rms

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"fdrms/internal/wal"
)

// The deterministic half of the streaming-checkpoint contract. With the
// chunk size shrunk so the capture needs many windows, the step hook — which
// runs at exactly the instants the writer lock is released between windows —
// applies fresh batches MID-CHECKPOINT and proves that:
//
//   - writers complete (log append + apply) while the checkpoint is in
//     flight, i.e. no writer blocks for the capture/encode duration;
//   - the checkpoint still covers exactly the pre-arm seq, and its payload
//     is byte-identical to a quiesced capture taken at that point;
//   - the mid-checkpoint batches land in the live state exactly as they do
//     on a plain engine that never checkpointed.
func TestCheckpointStreamsBetweenWriterBatches(t *testing.T) {
	defer func(old int) { checkpointChunk = old }(checkpointChunk)
	checkpointChunk = 4 // 32 utilities / 4 => 8 windows, 7 hook firings

	rng := rand.New(rand.NewSource(61))
	d := 3
	initial := durableTestPoints(rng, 80, d, 0)
	churn := durableTestBatches(rng, initial, 20, d)
	mid := durableTestBatches(rng, initial, 8, d)
	dir := t.TempDir()

	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for i, b := range churn {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatalf("churn batch %d: %v", i, err)
		}
	}

	armSeq := ds.LastSeq()
	want := engineState(t, ds.store.d.f) // quiesced capture at the arm point

	windows, applied := 0, 0
	ds.ckptStepHook = func() {
		windows++
		if applied >= len(mid) {
			return
		}
		if err := ds.ApplyBatch(mid[applied]); err != nil {
			t.Errorf("mid-checkpoint batch %d: %v", applied, err)
			return
		}
		applied++
		if got := ds.LastSeq(); got != armSeq+uint64(applied) {
			t.Errorf("mid-checkpoint write %d did not reach the log: seq %d, want %d",
				applied, got, armSeq+uint64(applied))
		}
	}
	seq, err := ds.Checkpoint()
	ds.ckptStepHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if windows < 2 || applied < 2 {
		t.Fatalf("capture yielded %d windows, %d interleaved writes — not streaming", windows, applied)
	}
	if seq != armSeq {
		t.Fatalf("checkpoint covers seq %d, want the pre-arm %d (interleaved writes must land after it)", seq, armSeq)
	}

	ckSeq, payload, ok, err := wal.NewestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("reading back the checkpoint: ok=%v err=%v", ok, err)
	}
	if ckSeq != seq {
		t.Fatalf("newest checkpoint on disk covers seq %d, want %d", ckSeq, seq)
	}
	if !bytes.Equal(payload, want) {
		t.Fatal("streamed checkpoint is not byte-identical to the quiesced capture at the pinned seq")
	}

	// The mid-checkpoint writes must have applied exactly: replay the whole
	// stream on a plain engine and compare states byte for byte.
	ref, err := NewDynamic(d, initial, durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range churn {
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range mid[:applied] {
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(engineState(t, ds.store.d.f), engineState(t, ref.f)) {
		t.Fatal("mid-checkpoint writes left the live state diverged from the plain engine")
	}
}

// The nondeterministic half, for the race detector: a writer goroutine
// hammers ApplyBatch the whole time repeated streaming checkpoints run.
// Afterwards the store must recover from disk to exactly its live state —
// checkpoint plus log tail re-create whatever interleaving actually
// happened.
func TestCheckpointConcurrentWithWrites(t *testing.T) {
	defer func(old int) { checkpointChunk = old }(checkpointChunk)
	checkpointChunk = 4

	rng := rand.New(rand.NewSource(67))
	d := 3
	initial := durableTestPoints(rng, 80, d, 0)
	batches := durableTestBatches(rng, initial, 200, d)
	dir := t.TempDir()

	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := ds.ApplyBatch(batches[i%len(batches)]); err != nil {
				t.Errorf("writer batch %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if _, err := ds.Checkpoint(); err != nil {
			t.Errorf("checkpoint %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		ds.Close()
		t.FailNow()
	}

	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	live := engineState(t, ds.store.d.f)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !bytes.Equal(engineState(t, re.store.d.f), live) {
		t.Fatal("recovery after concurrent checkpoints diverged from the live state")
	}
}
