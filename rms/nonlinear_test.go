package rms

import (
	"math/rand"
	"testing"
)

func TestUtilityClasses(t *testing.T) {
	if len(UtilityClasses()) != 4 {
		t.Fatalf("classes = %v", UtilityClasses())
	}
}

func TestComputeNonlinearAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	P := randomPoints(rng, 200, 3, 0)
	for _, class := range UtilityClasses() {
		Q, err := ComputeNonlinear(class, P, 3, 1, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if len(Q) == 0 || len(Q) > 6 {
			t.Fatalf("%s: |Q| = %d", class, len(Q))
		}
		mrr, err := MaxRegretRatioNonlinear(class, P, Q, 3, 1, 5000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if mrr > 0.25 {
			t.Fatalf("%s: mrr = %v", class, mrr)
		}
	}
}

func TestNonlinearUnknownClass(t *testing.T) {
	if _, err := ComputeNonlinear("bogus", hotelPoints(), 2, 1, 3, 1); err == nil {
		t.Fatal("unknown class should fail")
	}
	if _, err := MaxRegretRatioNonlinear("bogus", hotelPoints(), nil, 2, 1, 100, 1); err == nil {
		t.Fatal("unknown class should fail")
	}
}

// A set tuned for linear utilities can leave real regret under a convex
// class — the motivation for the extension.
func TestNonlinearDiffersFromLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	P := randomPoints(rng, 400, 4, 0)
	linQ, err := Compute("Sphere", P, 4, 1, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	nlQ, err := ComputeNonlinear("convex-L4", P, 4, 1, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	linUnderNL, err := MaxRegretRatioNonlinear("convex-L4", P, linQ, 4, 1, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	nlUnderNL, err := MaxRegretRatioNonlinear("convex-L4", P, nlQ, 4, 1, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The class-aware answer must not be (meaningfully) worse on its own class.
	if nlUnderNL > linUnderNL+0.02 {
		t.Fatalf("class-aware mrr %v worse than linear-tuned mrr %v under convex-L4", nlUnderNL, linUnderNL)
	}
}
