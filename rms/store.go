package rms

import (
	"sync"

	"fdrms/internal/core"
)

// Store is a concurrency-safe wrapper around a Dynamic instance: writers
// (Insert, Delete, ApplyBatch) take an exclusive lock, readers (Result,
// Len, Contains, Stats) share one, and every result is deep-copied before
// the lock is released, so callers may hold, mutate, or hand off returned
// values freely while updates continue. A server typically runs one
// ingestion goroutine applying batches and any number of query goroutines
// reading the current answer.
type Store struct {
	mu sync.RWMutex
	d  *Dynamic
}

// NewStore builds the maintenance structure over the initial database and
// returns it wrapped in a Store. See NewDynamic for the parameters.
func NewStore(dim int, initial []Point, opts Options) (*Store, error) {
	d, err := NewDynamic(dim, initial, opts)
	if err != nil {
		return nil, err
	}
	return &Store{d: d}, nil
}

// NewStoreFrom wraps an existing Dynamic instance. The caller must not use
// the instance directly afterwards.
func NewStoreFrom(d *Dynamic) *Store { return &Store{d: d} }

// Insert adds a tuple (replacing any live tuple with the same ID) and
// updates the answer.
func (s *Store) Insert(p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Insert(p)
}

// Delete removes the tuple with the given ID and updates the answer.
// Deleting an unknown ID is a no-op.
func (s *Store) Delete(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Delete(id)
}

// ApplyBatch applies the updates in order under one exclusive lock — the
// preferred write path for heavy ingestion, since readers wait for at most
// one batch rather than contending on every tuple.
func (s *Store) ApplyBatch(batch []Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.ApplyBatch(batch)
}

// Result returns the current k-RMS answer. The returned points are deep
// copies: they stay valid and immutable after further updates.
func (s *Store) Result() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := s.d.Result()
	out := make([]Point, len(res))
	for i, p := range res {
		vals := make([]float64, len(p.Values))
		copy(vals, p.Values)
		out[i] = Point{ID: p.ID, Values: vals}
	}
	return out
}

// Len returns the current database size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Len()
}

// Contains reports whether a tuple with the given ID is live.
func (s *Store) Contains(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Contains(id)
}

// Stats reports maintenance internals (see Dynamic.Stats).
func (s *Store) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Stats()
}
