package rms

import (
	"sync"
	"sync/atomic"

	"fdrms/internal/core"
	"fdrms/internal/topk"
)

// Store is the MVCC serving layer around a Dynamic instance. Each committed
// write (Insert, Delete, ApplyBatch) publishes a new immutable Generation —
// the answer, the membership, frozen stats, and an epoch-pinned view of the
// tuple index — through one atomic pointer. Reads (Result, Len, Contains,
// Stats, TopK, RegretRatioFor) load the current generation and never take a
// lock: they cannot wait on a writer, cannot observe a mid-batch state, and
// a handle obtained from Current stays exactly as it was — repeatable reads
// — for as long as the caller holds it. Writers serialize among themselves
// on a writer-only mutex; superseded generations are reclaimed by the
// garbage collector once the last reader drops them.
//
// A server typically runs one ingestion goroutine applying batches and any
// number of query goroutines; none of the query goroutines are ever blocked
// by ingestion (writes only append to the shared arenas and publish, see
// kdtree.View for the copy-on-write contract underneath).
type Store struct {
	// wmu serializes writers only. No read path acquires it.
	wmu sync.Mutex
	d   *Dynamic                   // engine mutations serialize on wmu; guarded by wmu
	gen atomic.Pointer[Generation] // published only by publishLocked; loads are lock-free

	deltas []idDelta // per-write membership delta scratch; guarded by wmu

	// tel, when set, mirrors serving traffic into obs handles (see
	// SetTelemetry in telemetry.go). Atomic so lock-free readers can pick it
	// up without racing the attach; nil costs readers one load+branch.
	tel atomic.Pointer[Telemetry]
}

// NewStore builds the maintenance structure over the initial database and
// returns it wrapped in a Store. See NewDynamic for the parameters.
func NewStore(dim int, initial []Point, opts Options) (*Store, error) {
	d, err := NewDynamic(dim, initial, opts)
	if err != nil {
		return nil, err
	}
	return NewStoreFrom(d), nil
}

// NewStoreFrom wraps an existing Dynamic instance, publishing generation 1
// from its current state. The caller must not use the instance directly
// afterwards.
func NewStoreFrom(d *Dynamic) *Store {
	s := &Store{d: d}
	s.publishLocked(0, nil)
	return s
}

// publishLocked captures the post-write state as generation prev+1 and
// publishes it; wmu must be held (or the store not yet shared). delta is the
// write's net membership change, merged into the previous generation's
// sorted id list — O(n) per commit only in the merge and the index view,
// never a map rebuild.
func (s *Store) publishLocked(prevID uint64, delta []idDelta) {
	fz := s.d.f.Freeze()
	var prevIDs []int
	if prev := s.gen.Load(); prev != nil {
		prevIDs = prev.ids
	} else {
		delta = nil // initial publish: take the full list below
	}
	ids := nextIDs(prevIDs, delta)
	if len(ids) != s.d.Len() || s.gen.Load() == nil {
		// Defensive resync (or the initial publish): rebuild the membership
		// from the engine. len(ids) != Len can only mean the delta drifted
		// from what the engine actually applied.
		ids = make([]int, 0, s.d.Len())
		for _, p := range s.d.f.Points() {
			ids = append(ids, p.ID)
		}
	}
	result := make([]Point, len(fz.Result))
	for i, p := range fz.Result {
		vals := make([]float64, len(p.Coords))
		copy(vals, p.Coords)
		result[i] = Point{ID: p.ID, Values: vals}
	}
	s.gen.Store(&Generation{
		id:     prevID + 1,
		result: result,
		ids:    ids,
		stats:  fz.Stats,
		k:      fz.K,
		dim:    s.d.dim,
		index:  fz.Index,
		born:   monotonicNanos(),
	})
}

// Current returns the newest committed generation: an immutable handle
// whose every read method is lock-free and pinned to that version. Use it
// to make several reads mutually consistent; call again for fresher data.
func (s *Store) Current() *Generation { return s.gen.Load() }

// Insert adds a tuple (replacing any live tuple with the same ID), updates
// the answer, and publishes a new generation. A rejected tuple publishes
// nothing.
func (s *Store) Insert(p Point) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ts := s.traceBegin()
	prev := s.gen.Load().id
	err := s.d.Insert(p)
	if err == nil {
		s.deltas = append(s.deltas[:0], idDelta{id: p.ID, live: true})
		s.publishLocked(prev, s.deltas)
		s.traceEnd(ts, 1, 0)
	}
	return err
}

// Delete removes the tuple with the given ID, updates the answer, and
// publishes a new generation. Deleting an unknown ID is a no-op that
// publishes nothing — screened against the current generation without any
// lock, so no-op deletes (common when upstream retries or mirrors a feed)
// are as cheap as reads; the check is repeated under the writer mutex in
// case a racing writer removed the tuple in between.
func (s *Store) Delete(id int) {
	if !s.gen.Load().Contains(id) {
		return
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if !s.d.Contains(id) {
		return
	}
	ts := s.traceBegin()
	prev := s.gen.Load().id
	s.d.Delete(id)
	s.deltas = append(s.deltas[:0], idDelta{id: id, live: false})
	s.publishLocked(prev, s.deltas)
	s.traceEnd(ts, 0, 1)
}

// ApplyBatch applies the updates in order as one write: readers either see
// the generation before the whole batch or the one after it, never a
// mid-batch state — the preferred write path for heavy ingestion. A
// rejected batch (it is validated up front and applied all-or-nothing)
// publishes nothing.
func (s *Store) ApplyBatch(batch []Update) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ts := s.traceBegin()
	prev := s.gen.Load().id
	err := s.d.ApplyBatch(batch)
	if err == nil && len(batch) > 0 {
		s.deltas = s.deltas[:0]
		dels := 0
		for _, u := range batch {
			if u.Delete {
				s.deltas = append(s.deltas, idDelta{id: u.ID, live: false})
				dels++
			} else {
				s.deltas = append(s.deltas, idDelta{id: u.Point.ID, live: true})
			}
		}
		s.publishLocked(prev, s.deltas)
		s.traceEnd(ts, len(batch)-dels, dels)
	}
	return err
}

// Result returns the current k-RMS answer as an immutable snapshot: the
// slice stays valid (and unchanged) after further updates, and consecutive
// reads between writes return the same shared slice without copying.
// Callers must treat the returned points as read-only; a caller that needs
// private mutable tuples should copy them. Equivalent to Current().Result().
func (s *Store) Result() []Point {
	t := s.tel.Load()
	if t == nil {
		return s.gen.Load().Result()
	}
	start := monotonicNanos()
	out := s.gen.Load().Result()
	t.readResultNs.Observe(monotonicNanos() - start)
	return out
}

// Len returns the current database size.
func (s *Store) Len() int { return s.gen.Load().Len() }

// Contains reports whether a tuple with the given ID is live.
func (s *Store) Contains(id int) bool { return s.gen.Load().Contains(id) }

// Stats reports maintenance internals as frozen at the last committed write.
func (s *Store) Stats() core.Stats { return s.gen.Load().Stats() }

// TopK returns the k live tuples scoring highest under the utility, with
// scores, against the current generation (see Generation.TopK).
func (s *Store) TopK(utility []float64, k int) ([]Scored, error) {
	t := s.tel.Load()
	if t == nil {
		return s.gen.Load().TopK(utility, k)
	}
	start := monotonicNanos()
	out, err := s.gen.Load().TopK(utility, k)
	t.readTopKNs.Observe(monotonicNanos() - start)
	return out, err
}

// RegretRatioFor evaluates the current answer against one preference
// (see Generation.RegretRatioFor).
func (s *Store) RegretRatioFor(utility []float64) (float64, error) {
	t := s.tel.Load()
	if t == nil {
		return s.gen.Load().RegretRatioFor(utility)
	}
	start := monotonicNanos()
	out, err := s.gen.Load().RegretRatioFor(utility)
	t.readRegretNs.Observe(monotonicNanos() - start)
	return out, err
}

// applyOps applies already-validated engine operations as one write — the
// durable store's apply path, which validates and converts a batch exactly
// once (when encoding it for the log) and must then apply the very ops it
// logged. Publishes a new generation like every committed write.
func (s *Store) applyOps(ops []topk.Op) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ts := s.traceBegin()
	prev := s.gen.Load().id
	s.d.f.ApplyBatch(ops)
	if len(ops) > 0 {
		s.deltas = s.deltas[:0]
		dels := 0
		for _, op := range ops {
			if op.Delete {
				s.deltas = append(s.deltas, idDelta{id: op.ID, live: false})
				dels++
			} else {
				s.deltas = append(s.deltas, idDelta{id: op.Point.ID, live: true})
			}
		}
		s.publishLocked(prev, s.deltas)
		s.traceEnd(ts, len(ops)-dels, dels)
	}
}

// withWriteLock runs f under the writer mutex — the durable store's
// checkpoint capture hook (readers keep flowing; concurrent writers wait).
func (s *Store) withWriteLock(f func()) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	f()
}

// Close releases the wrapped instance's persistent shard worker pool (see
// Dynamic.Close). Reads and writes keep working afterwards; parallel phases
// run inline. Idempotent.
func (s *Store) Close() {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.d.Close()
}
