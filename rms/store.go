package rms

import (
	"sync"

	"fdrms/internal/core"
	"fdrms/internal/topk"
)

// Store is a concurrency-safe wrapper around a Dynamic instance: writers
// (Insert, Delete, ApplyBatch) take an exclusive lock, readers (Result,
// Len, Contains, Stats) share one. Result returns a cached immutable
// snapshot that is rebuilt at most once per write, so read-mostly servers
// pay O(r·d) only after an update, not on every read. A server typically
// runs one ingestion goroutine applying batches and any number of query
// goroutines reading the current answer.
type Store struct {
	mu sync.RWMutex
	d  *Dynamic

	// cache is the current answer, deep-copied out of the engine once per
	// write generation and shared by every reader until the next write
	// invalidates it. Guarded by cacheMu (readers holding only mu.RLock may
	// race to fill it); writers invalidate under the exclusive mu.
	cacheMu sync.Mutex
	cache   []Point
}

// NewStore builds the maintenance structure over the initial database and
// returns it wrapped in a Store. See NewDynamic for the parameters.
func NewStore(dim int, initial []Point, opts Options) (*Store, error) {
	d, err := NewDynamic(dim, initial, opts)
	if err != nil {
		return nil, err
	}
	return &Store{d: d}, nil
}

// NewStoreFrom wraps an existing Dynamic instance. The caller must not use
// the instance directly afterwards.
func NewStoreFrom(d *Dynamic) *Store { return &Store{d: d} }

// invalidate drops the cached result; called with mu held exclusively.
func (s *Store) invalidate() {
	s.cacheMu.Lock()
	s.cache = nil
	s.cacheMu.Unlock()
}

// Insert adds a tuple (replacing any live tuple with the same ID) and
// updates the answer. A rejected tuple leaves the cached snapshot intact.
func (s *Store) Insert(p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.d.Insert(p)
	if err == nil {
		s.invalidate()
	}
	return err
}

// Delete removes the tuple with the given ID and updates the answer.
// Deleting an unknown ID is a no-op and keeps the cached snapshot. Unknown
// IDs are screened under the shared lock first, so no-op deletes (common
// when upstream retries or mirrors a feed) never stall concurrent readers
// behind an exclusive acquisition; the check is repeated under the exclusive
// lock in case a racing writer removed the tuple in between.
func (s *Store) Delete(id int) {
	s.mu.RLock()
	known := s.d.Contains(id)
	s.mu.RUnlock()
	if !known {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.d.Contains(id) {
		return
	}
	s.d.Delete(id)
	s.invalidate()
}

// ApplyBatch applies the updates in order under one exclusive lock — the
// preferred write path for heavy ingestion, since readers wait for at most
// one batch rather than contending on every tuple. A rejected batch (it is
// validated up front and applied all-or-nothing) keeps the cached snapshot.
func (s *Store) ApplyBatch(batch []Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.d.ApplyBatch(batch)
	if err == nil && len(batch) > 0 {
		s.invalidate()
	}
	return err
}

// Result returns the current k-RMS answer as a shared immutable snapshot:
// the slice stays valid (and unchanged) after further updates, and
// consecutive reads between writes return the same cached copy without
// re-copying the points. Callers must treat the returned points as
// read-only; a caller that needs private mutable tuples should copy them.
func (s *Store) Result() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.cacheMu.Lock()
	if c := s.cache; c != nil {
		s.cacheMu.Unlock()
		return c
	}
	s.cacheMu.Unlock()
	// Deep-copy outside cacheMu: only readers reach here (writers hold mu
	// exclusively), and racing readers build identical snapshots.
	res := s.d.Result()
	out := make([]Point, len(res))
	for i, p := range res {
		vals := make([]float64, len(p.Values))
		copy(vals, p.Values)
		out[i] = Point{ID: p.ID, Values: vals}
	}
	s.cacheMu.Lock()
	if s.cache == nil {
		s.cache = out
	} else {
		out = s.cache // another reader won the fill race; share its copy
	}
	s.cacheMu.Unlock()
	return out
}

// Len returns the current database size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Len()
}

// Contains reports whether a tuple with the given ID is live.
func (s *Store) Contains(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Contains(id)
}

// applyOps applies already-validated engine operations under the exclusive
// lock — the durable store's apply path, which validates and converts a
// batch exactly once (when encoding it for the log) and must then apply the
// very ops it logged.
func (s *Store) applyOps(ops []topk.Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.f.ApplyBatch(ops)
	if len(ops) > 0 {
		s.invalidate()
	}
}

// Stats reports maintenance internals (see Dynamic.Stats).
func (s *Store) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Stats()
}

// Close releases the wrapped instance's persistent shard worker pool (see
// Dynamic.Close). Reads and writes keep working afterwards; parallel phases
// run inline. Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Close()
}
