package rms

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/topk"
	"fdrms/internal/wal"
)

// DurableOptions configures the durability subsystem of a DurableStore.
type DurableOptions struct {
	// SyncEveryBatch fsyncs the log after every write, so an acknowledged
	// update is never lost. Off, the durable prefix trails by up to
	// SyncInterval (plus the OS flush), which multiplies ingest throughput —
	// the classic WAL trade-off; the recovery bench quantifies both sides.
	SyncEveryBatch bool
	// SyncInterval bounds the staleness of the durable prefix when
	// SyncEveryBatch is off; zero syncs only on rotation, Checkpoint, Sync,
	// and Close.
	SyncInterval time.Duration
	// SegmentBytes is the log segment rotation threshold
	// (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// KeepCheckpoints is how many checkpoint files survive pruning after a
	// new one is written (default 2: the newest plus one fallback should the
	// newest turn out corrupt on recovery).
	KeepCheckpoints int

	// CheckpointEveryOps runs an automatic Checkpoint once at least this
	// many operations have been applied since the last checkpoint (manual
	// or automatic). Zero disables the op-count trigger. The checkpoint runs
	// synchronously in the goroutine of the write that crossed the
	// threshold, after that write's batch is applied and outside the writer
	// lock — concurrent writers keep flowing, and a checkpoint failure is
	// returned by the triggering write wrapped in ErrAutoCheckpoint (the
	// write itself is already durable and applied; do not retry it).
	CheckpointEveryOps int

	// CheckpointInterval runs an automatic Checkpoint when this much time
	// has passed since the last one, checked as writes complete (the store
	// runs no background timer: a quiescent store stays untouched, which
	// also means a lone write after a long idle stretch is what triggers the
	// catch-up checkpoint). Zero disables the time trigger.
	CheckpointInterval time.Duration

	// RetainSegments keeps at least this many of the newest log segments
	// through checkpoint-driven pruning — a static cushion for WAL-shipping
	// followers tailing the directory, useful when no feedback channel exists
	// to drive SetRetainFloor. Zero retains only what recovery requires.
	RetainSegments int
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.KeepCheckpoints == 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// DurableStore is a Store whose updates survive a crash: every batch is
// appended to a write-ahead log BEFORE it is applied (log-before-apply), and
// Checkpoint persists a full snapshot so recovery replays only the log tail.
//
// Durability is exact, not approximate: recovery rebuilds the engine state
// bit for bit — the same result set, the same covers, the same maintenance
// counters as the uninterrupted run — because the checkpoint captures the
// path-dependent state (Φ sets, runner-up buffers, cover assignment)
// verbatim and WAL replay is the same deterministic ApplyBatch path that
// produced the state in the first place.
//
// Reads (Result, Len, Contains, Stats) are served by the embedded Store and
// never touch the log. Writers serialize on the store's write lock plus the
// log; a Checkpoint STREAMS its capture — it pins the state under the
// writer lock (an O(arena) generation pin, not an O(state) copy), then
// captures bounded chunks between writer batches and encodes and writes
// off the lock entirely — so ingestion keeps flowing for the whole
// checkpoint, pausing only for the pin plus one chunk at a time, and
// readers not at all.
type DurableStore struct {
	store *Store
	dir   string
	opt   DurableOptions

	// wmu serializes writers across the log append and the in-memory apply,
	// keeping the log order identical to the apply order. It nests OUTSIDE
	// store.mu.
	wmu    sync.Mutex
	log    *wal.Log // opened at construction, then guarded by wmu
	closed bool     // guarded by wmu

	ops []topk.Op // reusable batch-conversion scratch; guarded by wmu

	// ckptMu serializes whole checkpoints (manual calls racing each other or
	// the auto trigger): the engine supports one armed streaming capture at
	// a time. It nests OUTSIDE wmu and is held across the entire capture,
	// including the off-lock chunk windows writers slip through.
	ckptMu sync.Mutex

	// ckptStepHook, when set (tests only, before any concurrency starts),
	// runs between chunk windows of a streaming checkpoint — the instants
	// where writers are free to cut in.
	ckptStepHook func()

	// Auto-checkpoint state (see DurableOptions.CheckpointEveryOps /
	// CheckpointInterval). ckptBusy keeps concurrent triggering writers from
	// stacking redundant checkpoints (the loser simply skips — the winner's
	// checkpoint covers its batch too, since Checkpoint captures after
	// syncing the log).
	opsSinceCkpt int       // guarded by wmu
	lastCkpt     time.Time // guarded by wmu
	ckptBusy     atomic.Bool

	// appliedSeq mirrors log.LastSeq after every committed write so serving
	// paths can report the durable position without touching wmu (LastSeq
	// takes the writer lock; /healthz and per-read annotations must not).
	appliedSeq atomic.Uint64

	// tel, when set, mirrors checkpoint traffic into obs handles (the store
	// and WAL wire their own shares; see DurableStore.SetTelemetry). Atomic
	// so a checkpoint never races the attach.
	tel atomic.Pointer[Telemetry]
}

// OpenDurable opens (or creates) a durable store rooted at dir.
//
// A fresh directory initializes the structure from initial (exactly like
// NewStore) and writes a genesis checkpoint before accepting writes, so the
// initial database is always recoverable. A directory holding state ignores
// dim, initial, and every opts field except Shards — the configuration that
// built the store is part of its durable state, while the shard count is a
// per-host parallelism knob (opts.Shards > 0 overrides the persisted value;
// it never affects any answer) — and recovers: the newest valid checkpoint is
// loaded (falling back to an older one if the newest is damaged) and every
// logged batch after it is replayed. A torn record at the log tail — the
// write a crash interrupted — is truncated away; recovery lands on exactly
// the durable prefix.
func OpenDurable(dir string, dim int, initial []Point, opts Options, dopts DurableOptions) (*DurableStore, error) {
	dopts = dopts.withDefaults()
	hasState, err := wal.HasState(dir)
	if err != nil {
		return nil, err
	}
	// The interval trigger counts from open: a fresh store just wrote (or is
	// about to write) its genesis checkpoint, and a recovered one replays
	// onto a checkpoint it only just loaded.
	ds := &DurableStore{dir: dir, opt: dopts, lastCkpt: time.Now()}
	logOpts := wal.Options{
		SegmentBytes:    dopts.SegmentBytes,
		SyncEveryAppend: dopts.SyncEveryBatch,
		SyncInterval:    dopts.SyncInterval,
		RetainSegments:  dopts.RetainSegments,
	}

	if !hasState {
		d, err := NewDynamic(dim, initial, opts)
		if err != nil {
			return nil, err
		}
		// Genesis checkpoint first, then the log: a crash between the two
		// leaves a checkpoint with no log, which recovers to the initial
		// state — correct, since nothing was acknowledged yet.
		if err := wal.WriteCheckpoint(dir, 0, core.EncodeSnapshot(nil, d.f.Snapshot())); err != nil {
			return nil, err
		}
		ds.log, err = wal.Open(dir, logOpts)
		if err != nil {
			return nil, err
		}
		ds.store = NewStoreFrom(d)
		return ds, nil
	}

	seq, payload, ok, err := wal.NewestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("rms: %s holds log segments but no readable checkpoint; cannot recover a base state", dir)
	}
	snap, err := core.DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("rms: decoding checkpoint %d: %w", seq, err)
	}
	f, err := core.Restore(snap, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("rms: restoring checkpoint %d: %w", seq, err)
	}
	ds.log, err = wal.Open(dir, logOpts)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Coalesced replay with the built-in continuity guard: batching is
	// answer-neutral (the engine's batch≡sequential contract, which the
	// crash-recovery tests re-verify end to end), and a gap between the
	// checkpoint and the surviving segments — possible when recovery falls
	// back past a damaged newer checkpoint after manual file surgery, since
	// Checkpoint itself prunes only up to the OLDEST retained checkpoint —
	// must fail loudly rather than silently skip acknowledged updates.
	replayed := 0
	replayErr := ds.log.ReplayBatched(seq, replayBatchOps, func(ops []topk.Op) error {
		f.ApplyBatch(ops)
		replayed += len(ops)
		return nil
	})
	if replayErr != nil {
		// Replay may already have started the engine's shard worker pool;
		// release it so a caller retrying OpenDurable does not accumulate
		// parked goroutines pinning the discarded structure.
		f.Close()
		ds.log.Close()
		return nil, fmt.Errorf("rms: replaying log after checkpoint %d: %w", seq, replayErr)
	}
	// All segments before the checkpoint may have been pruned; keep the seq
	// numbering monotonic regardless.
	ds.log.EnsureNextSeq(seq + 1)
	ds.appliedSeq.Store(ds.log.LastSeq())
	// The replayed tail counts toward CheckpointEveryOps: those operations
	// are applied but not yet covered by any checkpoint, so a store that
	// keeps crashing short of the threshold still checkpoints on the first
	// write after recovery instead of growing its replay window per run.
	ds.opsSinceCkpt = replayed
	ds.store = NewStoreFrom(&Dynamic{f: f, dim: snap.Dim})
	return ds, nil
}

// replayBatchOps is the coalescing threshold of WAL replay: decoded records
// accumulate until this many operations are pending, then apply as one
// engine batch. The answer does not depend on it.
const replayBatchOps = 4096

// HasDurableState reports whether dir already holds a recoverable store
// (checkpoints or log segments). A missing directory is simply false.
// Callers use it to decide between initializing and recovering before
// calling OpenDurable.
func HasDurableState(dir string) (bool, error) { return wal.HasState(dir) }

// errClosed is returned by writes against a closed store.
var errClosed = fmt.Errorf("rms: durable store is closed")

// ErrAutoCheckpoint wraps a checkpoint failure surfaced by the write that
// triggered it. The write ITSELF succeeded — it is logged, synced per the
// configured policy, and applied — so callers must NOT retry the batch on
// this error (FD-RMS state is path-dependent; a double-applied batch
// changes the answer). Detect it with errors.Is(err, rms.ErrAutoCheckpoint)
// and handle the checkpoint failure out of band (retry Checkpoint, free
// disk space, alert).
var ErrAutoCheckpoint = errors.New("rms: auto-checkpoint failed (the triggering write was applied)")

// Insert durably adds a tuple (replacing any live tuple with the same ID):
// the update is logged, synced per the configured policy, and then applied.
func (ds *DurableStore) Insert(p Point) error {
	return ds.ApplyBatch([]Update{Ins(p)})
}

// Delete durably removes the tuple with the given ID. Deleting an unknown ID
// is a no-op and is not logged.
func (ds *DurableStore) Delete(id int) error {
	return ds.durableWrite(func() (bool, error) {
		if !ds.store.Contains(id) {
			return false, nil
		}
		return true, ds.applyLocked([]Update{Del(id)})
	})
}

// ApplyBatch durably applies the updates in order: the whole batch becomes
// one log record (and one fsync under the per-batch policy) and is then
// applied through the store's batched path. The batch is validated before
// anything is logged, so a rejected batch leaves no trace.
func (ds *DurableStore) ApplyBatch(batch []Update) error {
	return ds.durableWrite(func() (bool, error) {
		if len(batch) == 0 {
			return false, nil
		}
		return true, ds.applyLocked(batch)
	})
}

// durableWrite runs one write under wmu (with a deferred unlock, so a panic
// in the apply path cannot wedge the store for a caller that recovers) and
// then the auto-checkpoint protocol. locked screens its input and reports
// whether anything was applied; screens that report false never trigger a
// checkpoint.
func (ds *DurableStore) durableWrite(locked func() (bool, error)) error {
	err, trigger := func() (error, bool) {
		ds.wmu.Lock()
		defer ds.wmu.Unlock()
		if ds.closed {
			return errClosed, false
		}
		applied, err := locked()
		return err, err == nil && applied && ds.autoCheckpointDueLocked()
	}()
	if !trigger {
		return err
	}
	return ds.runAutoCheckpoint()
}

// autoCheckpointDueLocked reports whether a configured auto-checkpoint
// trigger has fired; wmu must be held.
func (ds *DurableStore) autoCheckpointDueLocked() bool {
	return (ds.opt.CheckpointEveryOps > 0 && ds.opsSinceCkpt >= ds.opt.CheckpointEveryOps) ||
		(ds.opt.CheckpointInterval > 0 && time.Since(ds.lastCkpt) >= ds.opt.CheckpointInterval)
}

// runAutoCheckpoint runs the triggered checkpoint synchronously in the
// crossing writer's goroutine, outside wmu — concurrent writers keep
// flowing, and at most one auto-checkpoint runs at a time (a losing racer
// simply skips: the winner's checkpoint covers its batch too, since
// Checkpoint syncs the log before capturing). The write itself is already
// applied and durable per the sync policy; a checkpoint error is surfaced
// to the triggering caller.
func (ds *DurableStore) runAutoCheckpoint() error {
	if !ds.ckptBusy.CompareAndSwap(false, true) {
		return nil
	}
	defer ds.ckptBusy.Store(false)
	for pass := 0; ; pass++ {
		_, err := ds.Checkpoint()
		if err == errClosed {
			// A concurrent Close won the race; the write itself is applied
			// and logged, so it still reports success.
			return nil
		}
		if err != nil {
			// Wrapped so callers can tell "write applied, checkpoint
			// failed" from a failed write — retrying the batch would apply
			// it twice.
			return fmt.Errorf("%w: %w", ErrAutoCheckpoint, err)
		}
		// Writers that crossed the threshold while this checkpoint was on
		// disk lost the ckptBusy race and skipped; their operations re-armed
		// the trigger, so run ONE catch-up pass — otherwise a store that
		// quiesces right after a concurrent burst would sit past its
		// configured bound until the next write. The catch-up is bounded
		// (and requires uncovered ops): under sustained concurrent load the
		// trigger re-arms continuously, and an unbounded loop would pin the
		// triggering writer in back-to-back checkpoints forever — later
		// writes take over instead.
		if pass >= 1 {
			return nil
		}
		ds.wmu.Lock()
		due := ds.opsSinceCkpt > 0 && ds.autoCheckpointDueLocked()
		ds.wmu.Unlock()
		if !due {
			return nil
		}
	}
}

// applyLocked logs then applies one batch; wmu must be held. The batch is
// validated and converted exactly once, and the very ops that were logged
// are the ops applied — the log-before-apply hinge cannot drift between two
// validation copies.
func (ds *DurableStore) applyLocked(batch []Update) error {
	dim := ds.store.d.dim
	ds.ops = ds.ops[:0]
	for i, u := range batch {
		if u.Delete {
			ds.ops = append(ds.ops, topk.DeleteOp(u.ID))
			continue
		}
		if len(u.Point.Values) != dim {
			return fmt.Errorf("rms: batch[%d]: tuple has %d values, database has %d attributes", i, len(u.Point.Values), dim)
		}
		ds.ops = append(ds.ops, topk.InsertOp(toGeom(u.Point)))
	}
	if _, err := ds.log.Append(ds.ops); err != nil {
		return err
	}
	ds.store.applyOps(ds.ops)
	ds.opsSinceCkpt += len(ds.ops)
	ds.appliedSeq.Store(ds.log.LastSeq())
	return nil
}

// checkpointChunk bounds how many utilities one streaming-capture window
// copies while holding the writer lock — the unit of writer pause a running
// checkpoint can impose after its initial pin. A variable only so the
// concurrency tests can shrink it to force many windows on small universes.
var checkpointChunk = 1024

// Checkpoint persists a full snapshot of the current state and prunes the
// log segments and older checkpoint files it makes redundant. The capture
// STREAMS: under the write lock the state is only pinned (the log seq, the
// cover assignment, an epoch-pinned view of the tuple index — nothing
// proportional to Σ|Φ|), then utility states are copied in
// checkpointChunk-bounded windows with the lock RELEASED between windows,
// so concurrent writer batches interleave with the capture and land in the
// log after seq, exactly where replay expects them. Copy-on-first-write
// overlays (package topk) keep every captured value at its pin-point
// version, so the resulting snapshot — assembled, encoded, and written
// entirely off the lock — is bit-identical to a stop-the-world capture at
// seq; the concurrency suite enforces this byte for byte. Readers are
// never blocked. Returns the WAL seq the checkpoint covers.
func (ds *DurableStore) Checkpoint() (uint64, error) {
	// One streaming capture at a time: the engine has a single overlay
	// session. Held across the whole capture; writers do NOT take ckptMu,
	// so they keep flowing through the chunk windows.
	ds.ckptMu.Lock()
	defer ds.ckptMu.Unlock()
	tel := ds.tel.Load()
	var ckptStart int64
	if tel != nil {
		ckptStart = monotonicNanos()
	}
	var (
		seq      uint64
		sess     *core.SnapshotSession
		prevOps  int
		prevTime time.Time
		myStamp  time.Time
	)
	// The locked pin runs under a deferred unlock so a panic anywhere in it
	// cannot wedge the store for a caller that recovers.
	if err := func() error {
		ds.wmu.Lock()
		defer ds.wmu.Unlock()
		if ds.closed {
			return errClosed
		}
		// The log is synced BEFORE the capture: the checkpoint claims to
		// cover seq, so every batch up to seq must be at least as durable as
		// the checkpoint that supersedes it.
		if err := ds.log.Sync(); err != nil {
			return err
		}
		// Reset the auto-checkpoint triggers at capture time — operations
		// applied while the snapshot is being written to disk are NOT
		// covered by it and must count toward the next one. The pre-reset
		// values are remembered so a failed write restores them: a
		// checkpoint that never hit disk must not silence the triggers for
		// a whole further cycle.
		prevOps, prevTime = ds.opsSinceCkpt, ds.lastCkpt
		ds.opsSinceCkpt = 0
		myStamp = time.Now()
		ds.lastCkpt = myStamp
		seq = ds.log.LastSeq()
		// Arm the capture under the store's writer mutex: holding wmu at the
		// same time makes "state at seq" exact — no batch can slip between
		// the LastSeq read and the pin. Readers (which only load generation
		// handles) still flow.
		ds.store.withWriteLock(func() {
			sess = ds.store.d.f.StartSnapshot()
		})
		return nil
	}(); err != nil {
		return 0, err
	}

	// Stream the utility states out in bounded windows. Each window takes
	// only the store's writer mutex — NOT wmu — so writer batches (which
	// hold wmu across log append + apply) interleave between windows; their
	// mutations hit the copy-on-first-write overlay and cannot perturb the
	// pinned capture.
	for {
		var done bool
		var w0 int64
		if tel != nil {
			w0 = monotonicNanos()
		}
		ds.store.withWriteLock(func() {
			done = sess.Step(checkpointChunk)
		})
		if tel != nil {
			tel.ckptChunks.Inc()
			tel.ckptStallNs.Observe(monotonicNanos() - w0)
		}
		if done {
			break
		}
		if ds.ckptStepHook != nil {
			ds.ckptStepHook()
		}
	}
	// Assembly, encoding, and the file write all run off every lock.
	snap := sess.Finish()

	// A fresh buffer per call: Checkpoints are serialized by ckptMu, but a
	// shared encode buffer would outlive the call via wal internals for no
	// gain.
	if err := wal.WriteCheckpoint(ds.dir, seq, core.EncodeSnapshot(nil, snap)); err != nil {
		ds.wmu.Lock()
		// The ops this capture covered reached no durable checkpoint, so
		// they must count toward the op trigger again — unconditionally:
		// captures partition the op stream, so concurrent failing
		// Checkpoints each re-add their own share. If a concurrent
		// SUCCESSFUL checkpoint superseded this capture, its snapshot does
		// cover these ops and this overcounts — costing at most one
		// redundant checkpoint on the next write, the safe direction (an
		// undercount would silently extend the replay window past the
		// configured bound). The time trigger rewinds only when
		// un-superseded: rolling lastCkpt back past a successful
		// checkpoint would re-arm the interval for nothing.
		ds.opsSinceCkpt += prevOps
		if ds.lastCkpt.Equal(myStamp) {
			ds.lastCkpt = prevTime
		}
		ds.wmu.Unlock()
		return 0, err
	}
	if tel != nil {
		tel.checkpoints.Inc()
		tel.ckptNs.Observe(monotonicNanos() - ckptStart)
	}
	if err := wal.PruneCheckpoints(ds.dir, ds.opt.KeepCheckpoints); err != nil {
		return 0, err
	}
	// The log is pruned only up to the OLDEST checkpoint that survived
	// pruning: recovery may fall back to it if the newest turns out corrupt,
	// and must then find every subsequent batch still on disk.
	pruneTo, ok, err := wal.OldestCheckpointSeq(ds.dir)
	if err != nil || !ok {
		return seq, err
	}
	// Pruning the log needs the writer's segment bookkeeping stable.
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return seq, nil
	}
	return seq, ds.log.Prune(pruneTo)
}

// Sync flushes and fsyncs the log, making every applied batch durable
// regardless of the sync policy.
func (ds *DurableStore) Sync() error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return errClosed
	}
	return ds.log.Sync()
}

// Close syncs and closes the log and releases the engine's persistent shard
// worker pool. Further writes fail; reads keep working against the
// in-memory state.
func (ds *DurableStore) Close() error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	ds.store.Close()
	return ds.log.Close()
}

// LastSeq returns the seq of the last logged batch (0 before the first).
func (ds *DurableStore) LastSeq() uint64 {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	return ds.log.LastSeq()
}

// AppliedSeq is LastSeq without the writer lock: a lock-free mirror updated
// as each write commits, for serving paths (health endpoints, per-response
// annotations) that must never wait on ingestion. It may trail LastSeq by
// the in-flight write that is between its log append and its commit.
func (ds *DurableStore) AppliedSeq() uint64 { return ds.appliedSeq.Load() }

// SetRetainFloor pins WAL pruning so every batch with seq >= seq stays
// replayable — the feedback channel for replication: point it at the oldest
// seq any live follower still needs and checkpoint-driven pruning can never
// race a slow follower out of its position (see wal.Log.SetRetainFloor).
// Zero clears the floor.
func (ds *DurableStore) SetRetainFloor(seq uint64) {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return
	}
	ds.log.SetRetainFloor(seq)
}

// Dir returns the durability directory.
func (ds *DurableStore) Dir() string { return ds.dir }

// Result returns the current k-RMS answer (see Store.Result for the
// snapshot-sharing contract).
func (ds *DurableStore) Result() []Point { return ds.store.Result() }

// Len returns the current database size.
func (ds *DurableStore) Len() int { return ds.store.Len() }

// Contains reports whether a tuple with the given ID is live.
func (ds *DurableStore) Contains(id int) bool { return ds.store.Contains(id) }

// Stats reports maintenance internals (see Dynamic.Stats).
func (ds *DurableStore) Stats() core.Stats { return ds.store.Stats() }

// Current returns the newest committed generation (see Store.Current):
// lock-free repeatable reads pinned to one durable commit point.
func (ds *DurableStore) Current() *Generation { return ds.store.Current() }

// TopK queries the current generation's database (see Store.TopK).
func (ds *DurableStore) TopK(utility []float64, k int) ([]Scored, error) {
	return ds.store.TopK(utility, k)
}

// RegretRatioFor evaluates the current answer against one preference
// (see Store.RegretRatioFor).
func (ds *DurableStore) RegretRatioFor(utility []float64) (float64, error) {
	return ds.store.RegretRatioFor(utility)
}
