package rms

import (
	"fmt"
	"sync"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/topk"
	"fdrms/internal/wal"
)

// DurableOptions configures the durability subsystem of a DurableStore.
type DurableOptions struct {
	// SyncEveryBatch fsyncs the log after every write, so an acknowledged
	// update is never lost. Off, the durable prefix trails by up to
	// SyncInterval (plus the OS flush), which multiplies ingest throughput —
	// the classic WAL trade-off; the recovery bench quantifies both sides.
	SyncEveryBatch bool
	// SyncInterval bounds the staleness of the durable prefix when
	// SyncEveryBatch is off; zero syncs only on rotation, Checkpoint, Sync,
	// and Close.
	SyncInterval time.Duration
	// SegmentBytes is the log segment rotation threshold
	// (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// KeepCheckpoints is how many checkpoint files survive pruning after a
	// new one is written (default 2: the newest plus one fallback should the
	// newest turn out corrupt on recovery).
	KeepCheckpoints int
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.KeepCheckpoints == 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// DurableStore is a Store whose updates survive a crash: every batch is
// appended to a write-ahead log BEFORE it is applied (log-before-apply), and
// Checkpoint persists a full snapshot so recovery replays only the log tail.
//
// Durability is exact, not approximate: recovery rebuilds the engine state
// bit for bit — the same result set, the same covers, the same maintenance
// counters as the uninterrupted run — because the checkpoint captures the
// path-dependent state (Φ sets, runner-up buffers, cover assignment)
// verbatim and WAL replay is the same deterministic ApplyBatch path that
// produced the state in the first place.
//
// Reads (Result, Len, Contains, Stats) are served by the embedded Store and
// never touch the log. Writers serialize on the store's write lock plus the
// log; a Checkpoint captures its snapshot under that lock (a pure in-memory
// copy) and performs the encoding and disk writes after releasing it, so
// ingestion stalls only for the capture, and readers not at all.
type DurableStore struct {
	store *Store
	dir   string
	opt   DurableOptions

	// wmu serializes writers across the log append and the in-memory apply,
	// keeping the log order identical to the apply order. It nests OUTSIDE
	// store.mu.
	wmu    sync.Mutex
	log    *wal.Log
	closed bool

	ops []topk.Op // reusable batch-conversion scratch; guarded by wmu
}

// OpenDurable opens (or creates) a durable store rooted at dir.
//
// A fresh directory initializes the structure from initial (exactly like
// NewStore) and writes a genesis checkpoint before accepting writes, so the
// initial database is always recoverable. A directory holding state ignores
// dim, initial, and every opts field except Shards — the configuration that
// built the store is part of its durable state, while the shard count is a
// per-host parallelism knob (opts.Shards > 0 overrides the persisted value;
// it never affects any answer) — and recovers: the newest valid checkpoint is
// loaded (falling back to an older one if the newest is damaged) and every
// logged batch after it is replayed. A torn record at the log tail — the
// write a crash interrupted — is truncated away; recovery lands on exactly
// the durable prefix.
func OpenDurable(dir string, dim int, initial []Point, opts Options, dopts DurableOptions) (*DurableStore, error) {
	dopts = dopts.withDefaults()
	hasState, err := wal.HasState(dir)
	if err != nil {
		return nil, err
	}
	ds := &DurableStore{dir: dir, opt: dopts}
	logOpts := wal.Options{
		SegmentBytes:    dopts.SegmentBytes,
		SyncEveryAppend: dopts.SyncEveryBatch,
		SyncInterval:    dopts.SyncInterval,
	}

	if !hasState {
		d, err := NewDynamic(dim, initial, opts)
		if err != nil {
			return nil, err
		}
		// Genesis checkpoint first, then the log: a crash between the two
		// leaves a checkpoint with no log, which recovers to the initial
		// state — correct, since nothing was acknowledged yet.
		if err := wal.WriteCheckpoint(dir, 0, core.EncodeSnapshot(nil, d.f.Snapshot())); err != nil {
			return nil, err
		}
		ds.log, err = wal.Open(dir, logOpts)
		if err != nil {
			return nil, err
		}
		ds.store = NewStoreFrom(d)
		return ds, nil
	}

	seq, payload, ok, err := wal.NewestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("rms: %s holds log segments but no readable checkpoint; cannot recover a base state", dir)
	}
	snap, err := core.DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("rms: decoding checkpoint %d: %w", seq, err)
	}
	f, err := core.Restore(snap, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("rms: restoring checkpoint %d: %w", seq, err)
	}
	ds.log, err = wal.Open(dir, logOpts)
	if err != nil {
		return nil, err
	}
	// Coalesced replay with the built-in continuity guard: batching is
	// answer-neutral (the engine's batch≡sequential contract, which the
	// crash-recovery tests re-verify end to end), and a gap between the
	// checkpoint and the surviving segments — possible when recovery falls
	// back past a damaged newer checkpoint after manual file surgery, since
	// Checkpoint itself prunes only up to the OLDEST retained checkpoint —
	// must fail loudly rather than silently skip acknowledged updates.
	replayErr := ds.log.ReplayBatched(seq, replayBatchOps, func(ops []topk.Op) error {
		f.ApplyBatch(ops)
		return nil
	})
	if replayErr != nil {
		ds.log.Close()
		return nil, fmt.Errorf("rms: replaying log after checkpoint %d: %w", seq, replayErr)
	}
	// All segments before the checkpoint may have been pruned; keep the seq
	// numbering monotonic regardless.
	ds.log.EnsureNextSeq(seq + 1)
	ds.store = NewStoreFrom(&Dynamic{f: f, dim: snap.Dim})
	return ds, nil
}

// replayBatchOps is the coalescing threshold of WAL replay: decoded records
// accumulate until this many operations are pending, then apply as one
// engine batch. The answer does not depend on it.
const replayBatchOps = 4096

// HasDurableState reports whether dir already holds a recoverable store
// (checkpoints or log segments). A missing directory is simply false.
// Callers use it to decide between initializing and recovering before
// calling OpenDurable.
func HasDurableState(dir string) (bool, error) { return wal.HasState(dir) }

// errClosed is returned by writes against a closed store.
var errClosed = fmt.Errorf("rms: durable store is closed")

// Insert durably adds a tuple (replacing any live tuple with the same ID):
// the update is logged, synced per the configured policy, and then applied.
func (ds *DurableStore) Insert(p Point) error {
	return ds.ApplyBatch([]Update{Ins(p)})
}

// Delete durably removes the tuple with the given ID. Deleting an unknown ID
// is a no-op and is not logged.
func (ds *DurableStore) Delete(id int) error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return errClosed
	}
	if !ds.store.Contains(id) {
		return nil
	}
	return ds.applyLocked([]Update{Del(id)})
}

// ApplyBatch durably applies the updates in order: the whole batch becomes
// one log record (and one fsync under the per-batch policy) and is then
// applied through the store's batched path. The batch is validated before
// anything is logged, so a rejected batch leaves no trace.
func (ds *DurableStore) ApplyBatch(batch []Update) error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return errClosed
	}
	if len(batch) == 0 {
		return nil
	}
	return ds.applyLocked(batch)
}

// applyLocked logs then applies one batch; wmu must be held. The batch is
// validated and converted exactly once, and the very ops that were logged
// are the ops applied — the log-before-apply hinge cannot drift between two
// validation copies.
func (ds *DurableStore) applyLocked(batch []Update) error {
	dim := ds.store.d.dim
	ds.ops = ds.ops[:0]
	for i, u := range batch {
		if u.Delete {
			ds.ops = append(ds.ops, topk.DeleteOp(u.ID))
			continue
		}
		if len(u.Point.Values) != dim {
			return fmt.Errorf("rms: batch[%d]: tuple has %d values, database has %d attributes", i, len(u.Point.Values), dim)
		}
		ds.ops = append(ds.ops, topk.InsertOp(toGeom(u.Point)))
	}
	if _, err := ds.log.Append(ds.ops); err != nil {
		return err
	}
	ds.store.applyOps(ds.ops)
	return nil
}

// Checkpoint persists a full snapshot of the current state and prunes the
// log segments and older checkpoint files it makes redundant. The snapshot
// is captured in memory under the write lock (no I/O); encoding, the
// temp-file write, the fsync, and the pruning all run after the lock is
// released, so concurrent ingestion resumes immediately and readers are
// never blocked. Returns the WAL seq the checkpoint covers.
func (ds *DurableStore) Checkpoint() (uint64, error) {
	ds.wmu.Lock()
	if ds.closed {
		ds.wmu.Unlock()
		return 0, errClosed
	}
	// The log is synced BEFORE the capture: the checkpoint claims to cover
	// seq, so every batch up to seq must be at least as durable as the
	// checkpoint that supersedes it.
	if err := ds.log.Sync(); err != nil {
		ds.wmu.Unlock()
		return 0, err
	}
	seq := ds.log.LastSeq()
	ds.store.mu.RLock() // exclude any non-wmu writer path; readers still flow
	snap := ds.store.d.f.Snapshot()
	ds.store.mu.RUnlock()
	ds.wmu.Unlock()

	// A fresh buffer per call: concurrent Checkpoints are pointless but
	// legal, and a shared encode buffer here would race once wmu is dropped.
	if err := wal.WriteCheckpoint(ds.dir, seq, core.EncodeSnapshot(nil, snap)); err != nil {
		return 0, err
	}
	if err := wal.PruneCheckpoints(ds.dir, ds.opt.KeepCheckpoints); err != nil {
		return 0, err
	}
	// The log is pruned only up to the OLDEST checkpoint that survived
	// pruning: recovery may fall back to it if the newest turns out corrupt,
	// and must then find every subsequent batch still on disk.
	pruneTo, ok, err := wal.OldestCheckpointSeq(ds.dir)
	if err != nil || !ok {
		return seq, err
	}
	// Pruning the log needs the writer's segment bookkeeping stable.
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return seq, nil
	}
	return seq, ds.log.Prune(pruneTo)
}

// Sync flushes and fsyncs the log, making every applied batch durable
// regardless of the sync policy.
func (ds *DurableStore) Sync() error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return errClosed
	}
	return ds.log.Sync()
}

// Close syncs and closes the log. Further writes fail; reads keep working
// against the in-memory state.
func (ds *DurableStore) Close() error {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	return ds.log.Close()
}

// LastSeq returns the seq of the last logged batch (0 before the first).
func (ds *DurableStore) LastSeq() uint64 {
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	return ds.log.LastSeq()
}

// Dir returns the durability directory.
func (ds *DurableStore) Dir() string { return ds.dir }

// Result returns the current k-RMS answer (see Store.Result for the
// snapshot-sharing contract).
func (ds *DurableStore) Result() []Point { return ds.store.Result() }

// Len returns the current database size.
func (ds *DurableStore) Len() int { return ds.store.Len() }

// Contains reports whether a tuple with the given ID is live.
func (ds *DurableStore) Contains(id int) bool { return ds.store.Contains(id) }

// Stats reports maintenance internals (see Dynamic.Stats).
func (ds *DurableStore) Stats() core.Stats { return ds.store.Stats() }
