package rms

import (
	"fmt"
	"sort"
	"sync"

	"fdrms/internal/core"
	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Generation is one committed version of a Store: an immutable handle to the
// answer, the database membership, the maintenance stats, and an
// epoch-pinned view of the tuple index as they stood right after one write
// committed. Every method is lock-free — a pure function of the handle —
// so any number of goroutines may read one (or different) generations while
// the writer publishes new ones. Hold a Generation to get repeatable reads
// across several calls (the newest handle comes from Store.Current); drop it
// and the garbage collector reclaims the version.
type Generation struct {
	id     uint64
	result []Point      // Q_t, ascending id, deep-copied values
	ids    []int        // ascending ids of every live tuple
	stats  core.Stats   // frozen maintenance counters
	k      int          // rank depth for regret evaluation
	dim    int          // attribute count, for query validation
	index  *kdtree.View // the database pinned at this generation's epoch
	born   int64        // monotonicNanos at publish, for the age gauge
}

// ID returns the generation number: 1 for the initial build, +1 per
// committed write. Monotonically increasing across Store.Current calls.
func (g *Generation) ID() uint64 { return g.id }

// Epoch returns the tuple-index epoch the generation is pinned to.
func (g *Generation) Epoch() uint64 { return g.index.Epoch() }

// Result returns the k-RMS answer of this generation (at most R tuples,
// ordered by ID). The slice is immutable and shared by every caller:
// treat it as read-only, and copy tuples that need private mutation.
func (g *Generation) Result() []Point { return g.result }

// Len returns the database size of this generation.
func (g *Generation) Len() int { return len(g.ids) }

// Contains reports whether tuple id was live in this generation.
func (g *Generation) Contains(id int) bool {
	i := sort.SearchInts(g.ids, id)
	return i < len(g.ids) && g.ids[i] == id
}

// Stats reports the maintenance internals frozen at this generation.
func (g *Generation) Stats() core.Stats { return g.stats }

// Scored is one tuple of a TopK answer together with its utility score.
// The embedded Point shares storage with the generation: read-only.
type Scored struct {
	Point Point
	Score float64
}

// queryScratches pools kd-tree query scratch buffers across all generationsʼ
// lock-free queries (sync.Pool, not a lock: reads never wait on a writer).
var queryScratches = sync.Pool{New: func() any { return new(kdtree.QueryScratch) }}

// checkUtility validates a query utility vector against the generation's
// dimensionality. Components must be nonnegative (the tuple index's
// branch-and-bound upper bounds rely on it); the vector need not be
// normalized, since scores enter only through ratios and rankings.
func (g *Generation) checkUtility(utility []float64) error {
	if len(utility) != g.dim {
		return fmt.Errorf("rms: utility has %d components, database has %d attributes", len(utility), g.dim)
	}
	for i, v := range utility {
		if v < 0 || v != v {
			return fmt.Errorf("rms: utility[%d] = %v, need nonnegative components", i, v)
		}
	}
	return nil
}

// TopK returns the k tuples of THIS GENERATION's database with the highest
// score <utility, p>, in decreasing score order (ties to smaller ID), with
// their scores. Fewer than k are returned when the database held fewer. The
// query runs against the pinned index view: lock-free, never waiting on a
// writer, unaffected by any concurrent or later update.
func (g *Generation) TopK(utility []float64, k int) ([]Scored, error) {
	if err := g.checkUtility(utility); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("rms: TopK k = %d, need k >= 1", k)
	}
	sc := queryScratches.Get().(*kdtree.QueryScratch)
	res := g.index.TopKInto(geom.Vector(utility), k, sc)
	out := make([]Scored, len(res))
	for i, r := range res {
		out[i] = Scored{Point: Point{ID: r.Point.ID, Values: r.Point.Coords}, Score: r.Score}
	}
	queryScratches.Put(sc)
	return out, nil
}

// RegretRatioFor evaluates this generation's answer against one preference:
// rr_k(utility, Q) = max(0, 1 - ω(utility, Q)/ω_k(utility, P)), the k-regret
// ratio the paper minimizes the maximum of. 0 means the answer serves this
// preference as well as the k-th best tuple of the whole database; the
// conventions of internal/regret apply (0 when the database is empty or
// ω_k <= 0, 1 when the answer is empty). Lock-free, pinned to this
// generation.
func (g *Generation) RegretRatioFor(utility []float64) (float64, error) {
	if err := g.checkUtility(utility); err != nil {
		return 0, err
	}
	u := geom.Vector(utility)
	sc := queryScratches.Get().(*kdtree.QueryScratch)
	kth, ok := g.index.KthScoreInto(u, g.k, sc)
	queryScratches.Put(sc)
	if !ok || kth <= 0 {
		return 0, nil
	}
	if len(g.result) == 0 {
		return 1, nil
	}
	best := 0.0
	for i, p := range g.result {
		s := 0.0
		for j, uj := range u {
			s += uj * p.Values[j]
		}
		if i == 0 || s > best {
			best = s
		}
	}
	if r := 1 - best/kth; r > 0 {
		return r, nil
	}
	return 0, nil
}

// idDelta is the net liveness change of one id within a committed write.
type idDelta struct {
	id   int
	live bool
}

// nextIDs merges the sorted live-id list of the previous generation with the
// net per-id effect of one committed write (last operation wins), returning
// the new sorted list. Runs in O(|prev| + |delta| log |delta|), map-free:
// a stable sort groups the delta by id while preserving arrival order
// within a group, so each group's last entry IS the net effect (ins-then-del
// nets to dead, del-then-ins to live, replace to live) and the merge walks
// two sorted lists.
func nextIDs(prev []int, delta []idDelta) []int {
	if len(delta) == 0 {
		return prev
	}
	net := make([]idDelta, len(delta))
	copy(net, delta)
	sort.SliceStable(net, func(i, j int) bool { return net[i].id < net[j].id })
	w := 0
	for i := range net {
		if i+1 < len(net) && net[i+1].id == net[i].id {
			continue // a later op on the same id supersedes this one
		}
		net[w] = net[i]
		w++
	}
	net = net[:w]
	out := make([]int, 0, len(prev)+len(net))
	i, j := 0, 0
	for i < len(prev) || j < len(net) {
		switch {
		case j == len(net) || (i < len(prev) && prev[i] < net[j].id):
			out = append(out, prev[i])
			i++
		case i == len(prev) || net[j].id < prev[i]:
			if net[j].live {
				out = append(out, net[j].id)
			}
			j++
		default: // same id in both: the delta decides
			if net[j].live {
				out = append(out, net[j].id)
			}
			i++
			j++
		}
	}
	return out
}
