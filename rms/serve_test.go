package rms_test

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fdrms/rms"
)

// probeUtilities returns a few fixed nonnegative unit-ish preference vectors
// for query-path tests (basis directions plus mixtures).
func probeUtilities(d int) [][]float64 {
	us := make([][]float64, 0, d+2)
	for i := 0; i < d; i++ {
		u := make([]float64, d)
		u[i] = 1
		us = append(us, u)
	}
	uniform := make([]float64, d)
	skew := make([]float64, d)
	for i := range uniform {
		uniform[i] = 1
		skew[i] = float64(i + 1)
	}
	return append(us, uniform, skew)
}

// bruteTopK is the linear-scan reference for Generation.TopK.
func bruteTopK(pts []rms.Point, u []float64, k int) []rms.Scored {
	out := make([]rms.Scored, 0, len(pts))
	for _, p := range pts {
		s := 0.0
		for j, uj := range u {
			s += uj * p.Values[j]
		}
		out = append(out, rms.Scored{Point: p, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// bruteRegret mirrors the convention of internal/regret.RatioForUtility.
func bruteRegret(pts, q []rms.Point, u []float64, k int) float64 {
	if len(pts) == 0 {
		return 0
	}
	scores := make([]float64, len(pts))
	for i, p := range pts {
		for j, uj := range u {
			scores[i] += uj * p.Values[j]
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if k > len(scores) {
		k = len(scores)
	}
	kth := scores[k-1]
	if kth <= 0 {
		return 0
	}
	if len(q) == 0 {
		return 1
	}
	best := 0.0
	for i, p := range q {
		s := 0.0
		for j, uj := range u {
			s += uj * p.Values[j]
		}
		if i == 0 || s > best {
			best = s
		}
	}
	if r := 1 - best/kth; r > 0 {
		return r
	}
	return 0
}

// TopK and RegretRatioFor must agree with a linear scan over the live set.
func TestGenerationQueriesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := 4
	pts := randomTuples(rng, 150, d, 0)
	opts := rms.Options{K: 3, R: 6, Epsilon: 0.02, MaxUtilities: 128, Seed: 7, Shards: 2}
	store, err := rms.NewStore(d, pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate so the pinned view is not just the initial build.
	var batch []rms.Update
	for _, p := range randomTuples(rng, 60, d, 1000) {
		batch = append(batch, rms.Ins(p))
	}
	for id := 0; id < 40; id++ {
		batch = append(batch, rms.Del(id))
	}
	if err := store.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	live := append([]rms.Point(nil), pts[40:]...)
	for _, u := range batch {
		if !u.Delete {
			live = append(live, u.Point)
		}
	}
	g := store.Current()
	if g.Len() != len(live) {
		t.Fatalf("generation len %d, want %d", g.Len(), len(live))
	}
	for _, u := range probeUtilities(d) {
		for _, k := range []int{1, 3, 10} {
			got, err := g.TopK(u, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteTopK(live, u, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("TopK(%v, %d):\n got %v\nwant %v", u, k, got, want)
			}
		}
		got, err := g.RegretRatioFor(u)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRegret(live, g.Result(), u, 3)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("RegretRatioFor(%v) = %v, want %v", u, got, want)
		}
	}

	// Validation errors.
	if _, err := g.TopK([]float64{1, 2}, 3); err == nil {
		t.Fatal("TopK accepted a wrong-dimension utility")
	}
	if _, err := g.TopK(probeUtilities(d)[0], 0); err == nil {
		t.Fatal("TopK accepted k = 0")
	}
	if _, err := g.RegretRatioFor([]float64{-1, 0, 0, 0}); err == nil {
		t.Fatal("RegretRatioFor accepted a negative utility component")
	}
}

// A held generation is repeatable: every read through it must be unaffected
// by later writes, while Current advances.
func TestGenerationPinnedAcrossWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := 3
	store, err := rms.NewStore(d, randomTuples(rng, 100, d, 0), rms.Options{K: 1, R: 5, Epsilon: 0.03, MaxUtilities: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := store.Current()
	if g.ID() != 1 {
		t.Fatalf("initial generation id = %d, want 1", g.ID())
	}
	u := probeUtilities(d)[d]
	beforeRes := append([]rms.Point(nil), g.Result()...)
	beforeTop, _ := g.TopK(u, 7)
	beforeReg, _ := g.RegretRatioFor(u)
	beforeLen, beforeEpoch := g.Len(), g.Epoch()

	var batch []rms.Update
	for _, p := range randomTuples(rng, 200, d, 500) {
		batch = append(batch, rms.Ins(p))
	}
	for id := 0; id < 60; id++ {
		batch = append(batch, rms.Del(id))
	}
	if err := store.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}

	if cur := store.Current(); cur.ID() != 2 || cur.Epoch() <= beforeEpoch {
		t.Fatalf("current generation id/epoch = %d/%d after a write", cur.ID(), cur.Epoch())
	}
	if !reflect.DeepEqual(g.Result(), beforeRes) || g.Len() != beforeLen || g.Epoch() != beforeEpoch {
		t.Fatal("held generation changed under a write")
	}
	afterTop, _ := g.TopK(u, 7)
	afterReg, _ := g.RegretRatioFor(u)
	if !reflect.DeepEqual(afterTop, beforeTop) || afterReg != beforeReg {
		t.Fatal("held generation's queries changed under a write")
	}
	if g.Contains(10) != true || store.Contains(10) != false {
		t.Fatal("membership not pinned: id 10 was deleted after the capture")
	}
}

// genExpect is the sequential twin's record of what one generation must look
// like, stored BEFORE the store publishes that generation.
type genExpect struct {
	result []rms.Point
	n      int
	topk   [][]rms.Scored
	regret []float64
}

// The race-mode stress suite: N reader goroutines hammer every read entry
// point while a writer streams batches. Every observed generation must be
// bit-equal to the sequential twin at that generation, ids must be
// monotonic per reader, and no read may ever see a torn or mid-batch state.
// Run with -race (and FDRMS_SHARDS=4 in CI) to exercise the lock-free read
// paths against the shard-parallel write path.
func TestStoreMVCCReadersVsWriterStress(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := 3
	const (
		k        = 2
		nReaders = 4
		nBatches = 25
	)
	initial := randomTuples(rng, 300, d, 0)
	opts := rms.Options{K: k, R: 6, Epsilon: 0.03, MaxUtilities: 64, Seed: 5, Shards: 4}
	store, err := rms.NewStore(d, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	twin, err := rms.NewStore(d, initial, opts) // used single-threaded
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	probes := probeUtilities(d)

	// expect[g] is published before store generation g exists, so a reader
	// that observes generation g always finds its expectation.
	var expect sync.Map
	record := func(id uint64, g *rms.Generation) {
		e := &genExpect{result: g.Result(), n: g.Len()}
		for _, u := range probes {
			top, err := g.TopK(u, k+2)
			if err != nil {
				t.Errorf("twin TopK: %v", err)
			}
			reg, err := g.RegretRatioFor(u)
			if err != nil {
				t.Errorf("twin regret: %v", err)
			}
			e.topk = append(e.topk, top)
			e.regret = append(e.regret, reg)
		}
		expect.Store(id, e)
	}
	record(1, twin.Current())

	var failed atomic.Bool
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastID := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				g := store.Current()
				if g.ID() < lastID {
					t.Errorf("reader %d: generation id went backwards: %d after %d", r, g.ID(), lastID)
					failed.Store(true)
					return
				}
				lastID = g.ID()
				v, ok := expect.Load(g.ID())
				if !ok {
					t.Errorf("reader %d: observed generation %d before its twin record", r, g.ID())
					failed.Store(true)
					return
				}
				e := v.(*genExpect)
				if g.Len() != e.n {
					t.Errorf("reader %d: gen %d: Len = %d, twin %d", r, g.ID(), g.Len(), e.n)
					failed.Store(true)
					return
				}
				if !reflect.DeepEqual(g.Result(), e.result) {
					t.Errorf("reader %d: gen %d: torn result %v, twin %v", r, g.ID(), g.Result(), e.result)
					failed.Store(true)
					return
				}
				ui := i % len(probes)
				top, err := g.TopK(probes[ui], k+2)
				if err != nil {
					t.Errorf("reader %d: TopK: %v", r, err)
					failed.Store(true)
					return
				}
				if !reflect.DeepEqual(top, e.topk[ui]) {
					t.Errorf("reader %d: gen %d: TopK diverges from twin", r, g.ID())
					failed.Store(true)
					return
				}
				reg, err := g.RegretRatioFor(probes[ui])
				if err != nil || reg != e.regret[ui] {
					t.Errorf("reader %d: gen %d: regret %v (err %v), twin %v", r, g.ID(), reg, err, e.regret[ui])
					failed.Store(true)
					return
				}
				// Point reads through the store-level wrappers too.
				store.Len()
				store.Contains(i % 400)
				store.Stats()
			}
		}(r)
	}

	for b := 0; b < nBatches && !failed.Load(); b++ {
		var batch []rms.Update
		for _, p := range randomTuples(rng, 16, d, 2000+100*b) {
			batch = append(batch, rms.Ins(p))
		}
		for j := 0; j < 4; j++ {
			batch = append(batch, rms.Del(rng.Intn(300)))
		}
		// Twin first: its generation b+2 expectation must exist before the
		// store can publish generation b+2.
		if err := twin.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		record(twin.Current().ID(), twin.Current())
		if err := store.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		if store.Current().ID() != twin.Current().ID() {
			t.Fatalf("store generation %d != twin %d", store.Current().ID(), twin.Current().ID())
		}
	}
	close(done)
	wg.Wait()
}

// Generation retirement: superseded generations (and the index views they
// pin) must be reclaimed once the last reader drops them — the writer must
// not keep old versions alive, and churn with outstanding handles must not
// pin defensive rebuilds forever.
func TestGenerationRetirementReleasesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	d := 3
	store, err := rms.NewStore(d, randomTuples(rng, 200, d, 0), rms.Options{K: 1, R: 5, Epsilon: 0.03, MaxUtilities: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const rounds = 20
	var finalized atomic.Int32
	for b := 0; b < rounds; b++ {
		g := store.Current()
		runtime.SetFinalizer(g, func(*rms.Generation) { finalized.Add(1) })
		var batch []rms.Update
		for _, p := range randomTuples(rng, 8, d, 1000+20*b) {
			batch = append(batch, rms.Ins(p))
		}
		batch = append(batch, rms.Del(b), rms.Del(b+100))
		if err := store.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		g = nil // drop the handle: the generation is now unreachable
	}

	// All rounds' handles were dropped and superseded; only the current
	// generation (no finalizer) is still referenced by the store. Finalizers
	// need the collector to notice, so nudge it a few times.
	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < rounds && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := finalized.Load(); got < rounds {
		t.Fatalf("only %d of %d retired generations were reclaimed — something pins old versions", got, rounds)
	}
}
