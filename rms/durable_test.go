package rms

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/wal"
)

// durableTestOptions keeps the engine small enough that the truncation sweep
// (one full recovery per byte offset) stays fast.
func durableTestOptions() Options {
	return Options{K: 1, R: 4, Epsilon: 0.1, MaxUtilities: 32, Seed: 5, Shards: 2}
}

func durableTestPoints(rng *rand.Rand, n, d, idBase int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = Point{ID: idBase + i, Values: v}
	}
	return pts
}

// durableTestBatches yields a deterministic mixed update stream in batches.
func durableTestBatches(rng *rand.Rand, initial []Point, nBatches, d int) [][]Update {
	live := make([]int, 0, len(initial)+nBatches*4)
	for _, p := range initial {
		live = append(live, p.ID)
	}
	next := 10000
	batches := make([][]Update, nBatches)
	for b := range batches {
		n := 1 + rng.Intn(4)
		batch := make([]Update, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 && len(live) > 0 {
				j := rng.Intn(len(live))
				batch = append(batch, Del(live[j]))
				live = append(live[:j], live[j+1:]...)
			} else {
				p := durableTestPoints(rng, 1, d, next)[0]
				next++
				batch = append(batch, Ins(p))
				live = append(live, p.ID)
			}
		}
		batches[b] = batch
	}
	return batches
}

// engineState captures everything the bit-identical contract covers: the
// encoded full snapshot (result set, Φ, covers, counters — all of it).
func engineState(t *testing.T, f *core.FDRMS) []byte {
	t.Helper()
	return core.EncodeSnapshot(nil, f.Snapshot())
}

func TestDurableStoreRecoversCleanShutdown(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := 3
	initial := durableTestPoints(rng, 80, d, 0)
	batches := durableTestBatches(rng, initial, 30, d)
	dir := t.TempDir()

	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	// Clean reference: the uninterrupted run.
	ref, err := NewDynamic(d, initial, durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	want := engineState(t, ref.f)
	if !bytes.Equal(engineState(t, ds.store.d.f), want) {
		t.Fatal("durable store diverged from the plain engine before any crash")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert(initial[0]); err == nil {
		t.Fatal("write after Close succeeded")
	}

	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !bytes.Equal(engineState(t, re.store.d.f), want) {
		t.Fatal("recovered state differs from the uninterrupted run")
	}
	if !reflect.DeepEqual(re.Result(), ref.Result()) {
		t.Fatal("recovered result differs")
	}
}

// The central crash-recovery property: for EVERY byte offset inside the
// final log record, truncating the log there (the file a crash tore) and
// reopening must land on the last durable prefix — all batches if the record
// survived whole, all but the last otherwise — with state bit-identical to
// an uninterrupted run over that same prefix. Recovery must also keep
// accepting writes identically afterwards.
func TestDurableStoreCrashTruncationSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := 3
	initial := durableTestPoints(rng, 60, d, 0)
	nBatches := 12
	batches := durableTestBatches(rng, initial, nBatches, d)
	dir := t.TempDir()

	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	// wants[i] is the reference state after i batches; conts[i] the state
	// after additionally applying the continuation batch.
	ref, err := NewDynamic(d, initial, durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	continuation := durableTestBatches(rand.New(rand.NewSource(99)), nil, 1, d)[0]
	wants := make([][]byte, nBatches+1)
	conts := make([][]byte, nBatches+1)
	snapAt := func(i int) {
		wants[i] = engineState(t, ref.f)
		cc, err := core.DecodeSnapshot(wants[i])
		if err != nil {
			t.Fatal(err)
		}
		cf, err := core.Restore(cc, 2)
		if err != nil {
			t.Fatal(err)
		}
		cd := &Dynamic{f: cf, dim: d}
		if err := cd.ApplyBatch(continuation); err != nil {
			t.Fatal(err)
		}
		conts[i] = engineState(t, cf)
	}
	snapAt(0)
	for i, b := range batches {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		snapAt(i + 1)
		if i == nBatches/2 {
			// A mid-stream checkpoint: recovery must compose checkpoint +
			// replay, not just replay from genesis.
			if _, err := ds.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Simulated crash: no Close. The log was synced per batch, so the files
	// hold everything.
	segs := walSegments(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record begins: reopen a copy truncated to just
	// before the end and take the durable length... simpler: recover lengths
	// by scanning backwards — the final record is the tail that, removed,
	// leaves nBatches-1 batches. We get its start by trying offsets from the
	// end until the recovered LastSeq drops.
	finalStart := -1
	for cut := len(full) - 1; cut >= 0; cut-- {
		if lastSeqAfterTruncate(t, dir, path, full, cut) == uint64(nBatches-1) {
			finalStart = cut
		} else if finalStart >= 0 {
			break
		}
	}
	if finalStart < 0 {
		t.Fatal("could not locate the final record")
	}

	for cut := finalStart; cut <= len(full); cut++ {
		wantBatches := nBatches - 1
		if cut == len(full) {
			wantBatches = nBatches
		}
		truncateTo(t, path, full, cut)
		re, err := OpenDurable(dir, 0, nil, Options{Shards: 2}, DurableOptions{SyncEveryBatch: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := engineState(t, re.store.d.f); !bytes.Equal(got, wants[wantBatches]) {
			t.Fatalf("cut %d: recovered state is not the %d-batch prefix state", cut, wantBatches)
		}
		// Recovery must continue identically too.
		if err := re.ApplyBatch(continuation); err != nil {
			t.Fatalf("cut %d: continuation: %v", cut, err)
		}
		if got := engineState(t, re.store.d.f); !bytes.Equal(got, conts[wantBatches]) {
			t.Fatalf("cut %d: post-recovery writes diverge from the clean run", cut)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		truncateTo(t, path, full, len(full))
	}
}

// lastSeqAfterTruncate truncates the segment copy to cut bytes, opens the
// store, and reports how many batches survived.
func lastSeqAfterTruncate(t *testing.T, dir, path string, full []byte, cut int) uint64 {
	t.Helper()
	truncateTo(t, path, full, cut)
	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	seq := re.LastSeq()
	re.Close()
	truncateTo(t, path, full, len(full))
	return seq
}

func truncateTo(t *testing.T, path string, full []byte, cut int) {
	t.Helper()
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
}

// walSegments lists the wal segment files of a durable dir, oldest first.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no wal segments")
	}
	return names
}

// An unsynced tail is allowed to vanish in a crash — but never to recover
// into a state the clean run could not have produced: whatever prefix
// survives must be a batch boundary state.
func TestDurableStoreIntervalSyncCrashLandsOnPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d := 3
	initial := durableTestPoints(rng, 50, d, 0)
	batches := durableTestBatches(rng, initial, 20, d)
	dir := t.TempDir()

	ds, err := OpenDurable(dir, d, initial, durableTestOptions(),
		DurableOptions{SyncInterval: time.Hour}) // nothing syncs until Sync/Close
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewDynamic(d, initial, durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	prefixes := make([][]byte, len(batches)+1)
	prefixes[0] = engineState(t, ref.f)
	for i, b := range batches {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		prefixes[i+1] = engineState(t, ref.f)
		if i == 9 {
			if err := ds.Sync(); err != nil { // make a mid-stream prefix durable
				t.Fatal(err)
			}
		}
	}
	// Crash without Close: batches after the explicit Sync lived only in the
	// write buffer and are gone — that loss is the policy's contract. What
	// recovery must guarantee: the fsynced prefix (>= 10 batches) survives,
	// and whatever prefix is recovered is exactly a batch-boundary state of
	// the clean run, never a blend.
	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	n := int(re.LastSeq())
	if n < 10 || n > len(batches) {
		t.Fatalf("recovered %d batches; the 10-batch synced prefix must survive", n)
	}
	if !bytes.Equal(engineState(t, re.store.d.f), prefixes[n]) {
		t.Fatalf("recovered state is not the %d-batch prefix state", n)
	}
}

func TestDurableStoreCheckpointPrunesAndRecoversWithoutOldSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := 3
	initial := durableTestPoints(rng, 40, d, 0)
	dir := t.TempDir()
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true, SegmentBytes: 256, KeepCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range durableTestBatches(rng, initial, 40, d) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	before := len(walSegments(t, dir))
	seq, err := ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 40 {
		t.Fatalf("checkpoint covered seq %d, want 40", seq)
	}
	if after := len(walSegments(t, dir)); after >= before {
		t.Fatalf("checkpoint pruned nothing: %d -> %d segments", before, after)
	}
	// More writes after the checkpoint, then crash.
	post := durableTestBatches(rand.New(rand.NewSource(54)), nil, 5, d)
	for _, b := range post {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	want := engineState(t, ds.store.d.f)
	// no Close: crash
	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(engineState(t, re.store.d.f), want) {
		t.Fatal("recovery from checkpoint + pruned log diverged")
	}
	if re.LastSeq() != 45 {
		t.Fatalf("LastSeq after recovery = %d, want 45", re.LastSeq())
	}
	// Numbering continues past the checkpoint even with old segments gone.
	if err := re.ApplyBatch(post[0]); err != nil {
		t.Fatal(err)
	}
	if re.LastSeq() != 46 {
		t.Fatalf("LastSeq after post-recovery write = %d, want 46", re.LastSeq())
	}
	re.Close()
}

func TestDurableStoreRejectsInvalidBatchWithoutLogging(t *testing.T) {
	d := 3
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(59))
	ds, err := OpenDurable(dir, d, durableTestPoints(rng, 30, d, 0), durableTestOptions(),
		DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	bad := []Update{Ins(Point{ID: 99, Values: []float64{1, 2}})} // wrong dim
	if err := ds.ApplyBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if ds.LastSeq() != 0 {
		t.Fatalf("invalid batch was logged: LastSeq = %d", ds.LastSeq())
	}
	// Unknown-id delete: no-op, not logged.
	if err := ds.Delete(123456); err != nil {
		t.Fatal(err)
	}
	if ds.LastSeq() != 0 {
		t.Fatal("no-op delete was logged")
	}
}

func TestOpenDurableErrorsWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a directory with a segment but no checkpoint.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", 1)), []byte("FDRMSWL1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, 2, nil, Options{}, DurableOptions{}); err == nil {
		t.Fatal("OpenDurable succeeded with no recoverable base state")
	}
}

// A corrupt newest checkpoint must degrade recovery to the previous one —
// and because Checkpoint prunes the log only up to the OLDEST retained
// checkpoint, every batch after the fallback is still on disk, so the
// recovered state is still exactly the pre-crash state.
func TestDurableStoreFallbackToOlderCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := 3
	initial := durableTestPoints(rng, 50, d, 0)
	dir := t.TempDir()
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true, SegmentBytes: 256, KeepCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	batches := durableTestBatches(rng, initial, 30, d)
	for i, b := range batches {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if i == 9 || i == 19 {
			if _, err := ds.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := engineState(t, ds.store.d.f)
	// Crash; then the newest checkpoint file turns out damaged.
	var newest string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "checkpoint-") && e.Name() > newest {
			newest = e.Name()
		}
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{})
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	defer re.Close()
	if !bytes.Equal(engineState(t, re.store.d.f), want) {
		t.Fatal("fallback recovery did not reproduce the pre-crash state")
	}
	if re.LastSeq() != 30 {
		t.Fatalf("LastSeq = %d, want 30", re.LastSeq())
	}
}

// Batches missing between the checkpoint and the surviving log must fail
// recovery loudly — silently skipping acknowledged updates is the one thing
// a durable store may never do.
func TestOpenDurableDetectsLogGap(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := 3
	initial := durableTestPoints(rng, 40, d, 0)
	dir := t.TempDir()
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range durableTestBatches(rng, initial, 20, d) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %v", segs)
	}
	// Lose the first segment: batches 1..k vanish while the genesis
	// checkpoint (seq 0) expects batch 1 first.
	if err := os.Remove(filepath.Join(dir, segs[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, 0, nil, Options{}, DurableOptions{}); err == nil {
		t.Fatal("recovery succeeded across a log gap")
	} else if !strings.Contains(err.Error(), "gap") {
		t.Fatalf("expected a gap error, got: %v", err)
	}
}

// copyTree clones a durability directory so recovery can be exercised
// against a frozen "crash image" while the original store keeps running.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Auto-checkpointing (CheckpointEveryOps) must behave exactly like a caller
// scheduling Checkpoint by hand: checkpoints advance without any manual
// call, and a crash after auto-checkpoints recovers to the same state as an
// uninterrupted run — and as a manually checkpointed twin.
func TestDurableStoreAutoCheckpointEveryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d := 3
	initial := durableTestPoints(rng, 60, d, 0)
	batches := durableTestBatches(rng, initial, 24, d)

	autoDir, manualDir := t.TempDir(), t.TempDir()
	auto, err := OpenDurable(autoDir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true, CheckpointEveryOps: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	manual, err := OpenDurable(manualDir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer manual.Close()
	ref, err := NewDynamic(d, initial, durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	sinceManual := 0
	for i, b := range batches {
		if err := auto.ApplyBatch(b); err != nil {
			t.Fatalf("auto batch %d: %v", i, err)
		}
		if err := manual.ApplyBatch(b); err != nil {
			t.Fatalf("manual batch %d: %v", i, err)
		}
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if sinceManual += len(b); sinceManual >= 10 {
			sinceManual = 0
			if _, err := manual.Checkpoint(); err != nil {
				t.Fatalf("manual checkpoint after batch %d: %v", i, err)
			}
		}
	}

	// Checkpoints advanced without any manual Checkpoint call on auto.
	autoSeq, _, ok, err := wal.NewestCheckpoint(autoDir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint in auto dir: ok=%v err=%v", ok, err)
	}
	if autoSeq == 0 {
		t.Fatal("auto store never checkpointed past genesis")
	}

	want := engineState(t, ref.f)
	//fdrms:orderinvariant each crash image recovers into its own TempDir and is checked independently
	for name, dir := range map[string]string{"auto": autoDir, "manual": manualDir} {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		re, err := OpenDurable(crash, 0, nil, Options{}, DurableOptions{})
		if err != nil {
			t.Fatalf("%s: recovering crash image: %v", name, err)
		}
		if got := engineState(t, re.store.d.f); !bytes.Equal(got, want) {
			t.Fatalf("%s: recovered state differs from the uninterrupted run", name)
		}
		// Recovery must keep accepting writes.
		for _, b := range durableTestBatches(rand.New(rand.NewSource(99)), nil, 4, d) {
			if err := re.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		re.Close()
	}
}

// The time trigger: with a tiny CheckpointInterval every write checkpoints,
// so the newest checkpoint always covers the last logged batch.
func TestDurableStoreAutoCheckpointInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	d := 2
	initial := durableTestPoints(rng, 30, d, 0)
	dir := t.TempDir()
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(),
		DurableOptions{SyncEveryBatch: true, CheckpointInterval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for i := 0; i < 5; i++ {
		if err := ds.Insert(durableTestPoints(rng, 1, d, 20000+i)[0]); err != nil {
			t.Fatal(err)
		}
		seq, _, ok, err := wal.NewestCheckpoint(dir)
		if err != nil || !ok {
			t.Fatalf("write %d: no checkpoint: ok=%v err=%v", i, ok, err)
		}
		if want := ds.LastSeq(); seq != want {
			t.Fatalf("write %d: newest checkpoint covers seq %d, log at %d", i, seq, want)
		}
	}
}
