package rms

import (
	"math/rand"
	"sort"
	"testing"
)

// pickLive selects a deterministic random victim from the live-point map:
// the keys are sorted first so a failing seed replays the exact same
// deletion schedule instead of one sampled from map iteration order.
func pickLive(rng *rand.Rand, live map[int]Point) int {
	ids := make([]int, 0, len(live))
	//fdrms:orderinvariant ids are sorted before use
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

func hotelPoints() []Point {
	// The paper's Fig. 1 tuples, read as (x = price score, y = rating).
	return []Point{
		{ID: 1, Values: []float64{0.2, 1.0}},
		{ID: 2, Values: []float64{0.6, 0.8}},
		{ID: 3, Values: []float64{0.7, 0.5}},
		{ID: 4, Values: []float64{1.0, 0.1}},
		{ID: 5, Values: []float64{0.4, 0.3}},
		{ID: 6, Values: []float64{0.2, 0.7}},
		{ID: 7, Values: []float64{0.3, 0.9}},
		{ID: 8, Values: []float64{0.6, 0.6}},
	}
}

func randomPoints(rng *rand.Rand, n, d, base int) []Point {
	out := make([]Point, n)
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = Point{ID: base + i, Values: v}
	}
	return out
}

func TestNewDynamicDefaults(t *testing.T) {
	d, err := NewDynamic(2, hotelPoints(), Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 {
		t.Fatalf("Len = %d", d.Len())
	}
	res := d.Result()
	if len(res) == 0 || len(res) > 3 {
		t.Fatalf("|Result| = %d", len(res))
	}
	if mrr := MaxRegretRatio(hotelPoints(), res, 2, 1, 5000, 1); mrr > 0.12 {
		t.Fatalf("default-tuned result has mrr %v", mrr)
	}
}

func TestDynamicLifecycle(t *testing.T) {
	d, err := NewDynamic(2, hotelPoints(), Options{K: 1, R: 3, Epsilon: 0.01, MaxUtilities: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(Point{ID: 9, Values: []float64{0.9, 0.6}}); err != nil {
		t.Fatal(err)
	}
	if !d.Contains(9) || d.Len() != 9 {
		t.Fatal("insert not reflected")
	}
	d.Delete(1)
	if d.Contains(1) || d.Len() != 8 {
		t.Fatal("delete not reflected")
	}
	for _, p := range d.Result() {
		if p.ID == 1 {
			t.Fatal("deleted tuple in result")
		}
	}
	if st := d.Stats(); st.CoverSize > 3 {
		t.Fatalf("cover size %d > r", st.CoverSize)
	}
}

func TestDynamicBadInputs(t *testing.T) {
	if _, err := NewDynamic(0, nil, Options{}); err == nil {
		t.Fatal("dim 0 should fail")
	}
	d, err := NewDynamic(2, hotelPoints(), Options{R: 3, Epsilon: 0.01, MaxUtilities: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(Point{ID: 10, Values: []float64{1, 2, 3}}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestComputeAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	P := randomPoints(rng, 150, 3, 0)
	for _, name := range Algorithms() {
		if name == "DP-2D" {
			continue // needs dim == 2, covered below
		}
		Q, err := Compute(name, P, 3, 1, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(Q) == 0 || len(Q) > 6 {
			t.Fatalf("%s: |Q| = %d", name, len(Q))
		}
	}
	if _, err := Compute("DP-2D", hotelPoints(), 2, 1, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute("NoSuch", hotelPoints(), 2, 1, 3, 1); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := Compute("Greedy", hotelPoints(), 2, 3, 3, 1); err == nil {
		t.Fatal("Greedy with k=3 should fail")
	}
}

func TestSkyline(t *testing.T) {
	sky := Skyline(hotelPoints())
	if len(sky) != 5 {
		t.Fatalf("|skyline| = %d, want 5", len(sky))
	}
}

func TestExactMaxRegretRatio(t *testing.T) {
	P := hotelPoints()
	v, err := ExactMaxRegretRatio(P, Skyline(P))
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-7 {
		t.Fatalf("skyline exact mrr = %v, want 0", v)
	}
	est := MaxRegretRatio(P, Skyline(P), 2, 1, 2000, 1)
	if est > 1e-9 {
		t.Fatalf("skyline sampled mrr = %v", est)
	}
}

func TestComputeMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	P := randomPoints(rng, 300, 3, 0)
	q, err := ComputeMinSize(P, 3, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) == 0 {
		t.Fatal("empty min-size answer")
	}
	if mrr := MaxRegretRatio(P, q, 3, 1, 10000, 2); mrr > 0.1+0.04 {
		t.Fatalf("min-size answer exceeds budget: %v", mrr)
	}
	if _, err := ComputeMinSize(P, 3, 1, 0, 1); err == nil {
		t.Fatal("eps=0 should be rejected")
	}
	if _, err := ComputeMinSize(P, 3, 1, 1, 1); err == nil {
		t.Fatal("eps=1 should be rejected")
	}
}

// End-to-end: dynamic maintenance tracks static recomputation quality over
// a churn-heavy session.
func TestDynamicVsStaticEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	P := randomPoints(rng, 300, 3, 0)
	d, err := NewDynamic(3, P[:150], Options{K: 1, R: 8, Epsilon: 0.01, MaxUtilities: 512})
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int]Point)
	for _, p := range P[:150] {
		live[p.ID] = p
	}
	for _, p := range P[150:] {
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
		live[p.ID] = p
	}
	for i := 0; i < 100; i++ {
		id := pickLive(rng, live)
		d.Delete(id)
		delete(live, id)
	}
	cur := make([]Point, 0, len(live))
	//fdrms:orderinvariant cur is sorted by id immediately below
	for _, p := range live {
		cur = append(cur, p)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i].ID < cur[j].ID })
	dynMRR := MaxRegretRatio(cur, d.Result(), 3, 1, 10000, 2)
	sphere, err := Compute("Sphere", cur, 3, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sphMRR := MaxRegretRatio(cur, sphere, 3, 1, 10000, 2)
	if dynMRR > sphMRR+0.06 {
		t.Fatalf("dynamic mrr %v far above static Sphere %v", dynMRR, sphMRR)
	}
}
