// Replica-facing surface of the rms layer: the constructors and apply path
// a WAL-shipping follower (internal/replica) needs to rebuild a Store from a
// primary's checkpoint payload and keep it converged by replaying tailed
// batches. Everything here reuses the exact recovery machinery of
// OpenDurable — same decode, same restore, same deterministic batch apply —
// so a follower's state is bit-identical to what the primary would recover
// to at the same seq.
package rms

import (
	"fmt"

	"fdrms/internal/core"
	"fdrms/internal/topk"
)

// NewReplicaStore rebuilds a serving Store from an encoded engine snapshot —
// the payload of a WAL checkpoint file — and returns it with the snapshot's
// dimensionality. shards tunes per-host query parallelism exactly as in
// OpenDurable (zero picks the persisted value); it never affects answers.
func NewReplicaStore(payload []byte, shards int) (*Store, int, error) {
	snap, err := core.DecodeSnapshot(payload)
	if err != nil {
		return nil, 0, fmt.Errorf("rms: decoding replica checkpoint: %w", err)
	}
	f, err := core.Restore(snap, shards)
	if err != nil {
		return nil, 0, fmt.Errorf("rms: restoring replica checkpoint: %w", err)
	}
	return NewStoreFrom(&Dynamic{f: f, dim: snap.Dim}), snap.Dim, nil
}

// ApplyReplicated applies one replayed batch of already-validated WAL
// operations and publishes the resulting generation, exactly like the
// recovery replay path. Coalescing several consecutive records into one call
// is answer-neutral (the engine's batch≡sequential contract). The caller —
// the follower's single replay loop — must not race other writers on the
// same store; readers are never blocked.
func (s *Store) ApplyReplicated(ops []topk.Op) {
	s.applyOps(ops)
}

// Dim returns the database dimensionality the store was built with.
func (s *Store) Dim() int { return s.d.dim }

// EncodeState captures and encodes the full engine state under the writer
// lock — the byte string two bit-identical stores agree on, the currency of
// every convergence check in the replication tests and bench. This is a
// stop-the-world O(state) capture: diagnostics and tests, not hot paths.
func (s *Store) EncodeState() []byte {
	var out []byte
	s.withWriteLock(func() {
		out = core.EncodeSnapshot(nil, s.d.f.Snapshot())
	})
	return out
}

// EncodeState is Store.EncodeState against the durable store's live state
// (it does not sync or touch the log; see Checkpoint for the durable
// variant).
func (ds *DurableStore) EncodeState() []byte { return ds.store.EncodeState() }
