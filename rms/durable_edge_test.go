package rms

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedDurable builds a primary with a few batches applied and a checkpoint
// covering them, then closes it and returns the checkpoint seq and the
// engine state at shutdown.
func seedDurable(t *testing.T, dir string) (ckptSeq uint64, want []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	d := 3
	initial := durableTestPoints(rng, 40, d, 0)
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range durableTestBatches(rng, initial, 10, d) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	ckptSeq, err = ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want = engineState(t, ds.store.d.f)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	return ckptSeq, want
}

// reopenAndVerify reopens the directory, asserts the recovered state and
// seq, and proves the store still accepts and persists writes.
func reopenAndVerify(t *testing.T, dir string, wantSeq uint64, want []byte) {
	t.Helper()
	re, err := OpenDurable(dir, 3, nil, durableTestOptions(), DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.LastSeq() != wantSeq {
		re.Close()
		t.Fatalf("recovered to seq %d, want %d", re.LastSeq(), wantSeq)
	}
	if got := engineState(t, re.store.d.f); !bytes.Equal(got, want) {
		re.Close()
		t.Fatal("recovered engine state differs from pre-shutdown state")
	}
	// The edge state must not wedge the write path.
	if err := re.Insert(Point{ID: 999999, Values: []float64{0.1, 0.2, 0.3}}); err != nil {
		re.Close()
		t.Fatalf("insert after edge recovery: %v", err)
	}
	if re.LastSeq() != wantSeq+1 {
		re.Close()
		t.Fatalf("post-recovery write got seq %d, want %d", re.LastSeq(), wantSeq+1)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func removeMatching(t *testing.T, dir, prefix, suffix string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), suffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	return n
}

// A checkpoint with ZERO segment files: the log was fully pruned (or the
// segments were lost) but the checkpoint covers everything acknowledged.
// Recovery must come up at the checkpoint seq with nothing to replay.
func TestOpenDurableCheckpointWithZeroSegments(t *testing.T) {
	dir := t.TempDir()
	ckptSeq, want := seedDurable(t, dir)
	if n := removeMatching(t, dir, "wal-", ".seg"); n == 0 {
		t.Fatal("no segments to remove — setup broken")
	}
	reopenAndVerify(t, dir, ckptSeq, want)
}

// An EMPTY active segment: rotation (or a crash between create and first
// append) left a header-only segment after the checkpoint. Zero records is
// not a gap; recovery must treat it as a clean empty tail.
func TestOpenDurableEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	ckptSeq, want := seedDurable(t, dir)
	removeMatching(t, dir, "wal-", ".seg")
	name := fmt.Sprintf("wal-%016x.seg", ckptSeq+1)
	if err := os.WriteFile(filepath.Join(dir, name), []byte("FDRMSWL1"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, ckptSeq, want)
}

// A checkpoint NEWER than every segment record: the checkpoint covers seq N
// while the surviving segments top out at N (or below). Replay must skip
// everything already covered instead of double-applying or refusing.
func TestOpenDurableCheckpointNewerThanEverySegment(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(78))
	d := 3
	initial := durableTestPoints(rng, 40, d, 0)
	// KeepCheckpoints is bigger than the checkpoints taken, so Prune never
	// removes a segment: every record stays on disk BEHIND the checkpoint.
	ds, err := OpenDurable(dir, d, initial, durableTestOptions(), DurableOptions{
		SyncEveryBatch: true, KeepCheckpoints: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range durableTestBatches(rng, initial, 10, d) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	ckptSeq, err := ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckptSeq != ds.LastSeq() {
		t.Fatalf("checkpoint at %d with log at %d — want checkpoint covering the whole log", ckptSeq, ds.LastSeq())
	}
	want := engineState(t, ds.store.d.f)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs++
		}
	}
	if segs == 0 {
		t.Fatal("pruning removed all segments — the edge state under test is gone")
	}
	reopenAndVerify(t, dir, ckptSeq, want)
}
