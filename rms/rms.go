// Package rms is the public API of the FD-RMS reproduction: k-regret
// minimizing set computation over static and fully-dynamic databases.
//
// A k-regret minimizing set (k-RMS) of a database P is a small subset Q
// such that for EVERY linear preference, the best tuple of Q scores almost
// as well as the k-th best tuple of P — a principled way to pick r
// representative tuples without knowing user preferences (Nanongkai et al.
// 2010; Chester et al. 2014).
//
// The centerpiece is Dynamic, an implementation of FD-RMS (Wang, Li, Wong,
// Tan: "A Fully Dynamic Algorithm for k-Regret Minimizing Sets", ICDE
// 2021), which maintains the answer under arbitrary tuple insertions and
// deletions via dynamic set cover over approximate top-k results, several
// orders of magnitude faster than recomputing with a static algorithm.
// Static baselines from the literature are available through Compute for
// one-shot use and comparison.
//
// Basic usage:
//
//	db, err := rms.NewDynamic(2, hotels, rms.Options{K: 1, R: 5})
//	...
//	db.Insert(rms.Point{ID: 99, Values: []float64{0.8, 0.9}})
//	db.Delete(12)
//	top := db.Result() // always the up-to-date representative set
//
// High-throughput ingestion should batch updates: ApplyBatch executes the
// per-utility maintenance of consecutive insertions — and, symmetrically,
// of consecutive deletions (sliding-window evictions, drains) — in one
// shard-parallel phase per run while producing exactly the same answer as
// the one-by-one path.
//
//	db.ApplyBatch([]rms.Update{
//		rms.Ins(rms.Point{ID: 100, Values: []float64{0.7, 0.8}}),
//		rms.Ins(rms.Point{ID: 101, Values: []float64{0.9, 0.2}}),
//		rms.Del(12),
//	})
//
// Servers that interleave reads with writes should wrap the structure in a
// Store, the MVCC serving layer: every committed write publishes a new
// immutable Generation (answer, membership, stats, and an epoch-pinned
// index view) through one atomic pointer, so reads are lock-free and never
// wait on a writer. Hold a Generation for repeatable reads across calls:
//
//	store := rms.NewStoreFrom(db)
//	go store.ApplyBatch(batch)         // writer
//	top := store.Result()              // lock-free, from any goroutine
//	g := store.Current()               // pin one version
//	g.TopK(u, 10)                      // query the database as of g
//	g.RegretRatioFor(u)                // evaluate g's answer for one user
//
// Stores that must survive a crash or restart wrap the same machinery in a
// DurableStore: every batch is written to a CRC-checked write-ahead log
// before it is applied, Checkpoint persists full snapshots, and OpenDurable
// recovers the exact pre-crash state — bit for bit — from the newest valid
// checkpoint plus the logged tail:
//
//	store, _ := rms.OpenDurable("./state", 2, hotels, rms.Options{K: 1, R: 5},
//		rms.DurableOptions{SyncEveryBatch: true})
package rms

import (
	"fmt"
	"sort"

	"fdrms/internal/baseline"
	"fdrms/internal/core"
	"fdrms/internal/geom"
	"fdrms/internal/nonlinear"
	"fdrms/internal/regret"
	"fdrms/internal/skyline"
	"fdrms/internal/topk"
	"fdrms/internal/tune"
)

// Point is a database tuple: a caller-chosen unique ID and nonnegative
// attribute values where larger is better. Scale values to [0, 1] for best
// numerical behaviour (regret ratios are scale-invariant, so this does not
// change any answer).
type Point struct {
	ID     int
	Values []float64
}

func toGeom(p Point) geom.Point { return geom.Point{ID: p.ID, Coords: p.Values} }

func toGeoms(ps []Point) []geom.Point {
	out := make([]geom.Point, len(ps))
	for i, p := range ps {
		out[i] = toGeom(p)
	}
	return out
}

func fromGeoms(ps []geom.Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = Point{ID: p.ID, Values: p.Coords}
	}
	return out
}

// Options configures a Dynamic instance.
type Options struct {
	// K is the regret rank: the answer competes with the k-th best tuple of
	// the database under every preference. K = 1 (the r-regret query) is
	// the most common choice. Default 1.
	K int
	// R is the maximum answer size. Default 10.
	R int
	// Epsilon is the approximate top-k slack of FD-RMS (paper Section
	// III-C): smaller is faster, larger can improve quality until the
	// utility-sample budget saturates. Zero selects it automatically with
	// the paper's trial-and-error rule on the initial database.
	Epsilon float64
	// MaxUtilities is the upper bound M on sampled utility vectors.
	// Default 2048.
	MaxUtilities int
	// Seed makes all sampling reproducible. Default 1.
	Seed int64
	// Shards is the number of utility-state shards used by the batched
	// update path; zero picks one per available CPU (overridable through
	// the FDRMS_SHARDS environment variable). The answer never depends on
	// it — it only tunes ApplyBatch parallelism.
	Shards int
}

func (o Options) withDefaults(dim int, initial []geom.Point) Options {
	if o.K == 0 {
		o.K = 1
	}
	if o.R == 0 {
		o.R = 10
	}
	if o.MaxUtilities == 0 {
		o.MaxUtilities = 2048
		if o.MaxUtilities <= o.R {
			o.MaxUtilities = 4 * o.R
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = tune.TuneEps(initial, dim, o.K, o.R, o.MaxUtilities, o.Seed)
	}
	return o
}

// Dynamic maintains an up-to-date k-RMS answer over a mutable database
// (the FD-RMS algorithm). It is not safe for concurrent use; wrap it in a
// mutex if multiple goroutines mutate the database.
type Dynamic struct {
	f   *core.FDRMS
	dim int
}

// NewDynamic builds the maintenance structure over the initial database
// (which may be empty). dim is the number of attributes of every tuple.
func NewDynamic(dim int, initial []Point, opts Options) (*Dynamic, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rms: dimension %d < 1", dim)
	}
	pts := toGeoms(initial)
	o := opts.withDefaults(dim, pts)
	f, err := core.New(dim, pts, core.Config{
		K: o.K, R: o.R, Eps: o.Epsilon, M: o.MaxUtilities, Seed: o.Seed, Shards: o.Shards,
	})
	if err != nil {
		return nil, err
	}
	return &Dynamic{f: f, dim: dim}, nil
}

// Insert adds a tuple (replacing any live tuple with the same ID) and
// updates the answer.
func (d *Dynamic) Insert(p Point) error {
	if len(p.Values) != d.dim {
		return fmt.Errorf("rms: tuple has %d values, database has %d attributes", len(p.Values), d.dim)
	}
	d.f.Insert(toGeom(p))
	return nil
}

// Delete removes the tuple with the given ID and updates the answer.
// Deleting an unknown ID is a no-op.
func (d *Dynamic) Delete(id int) { d.f.Delete(id) }

// Update is one element of an ApplyBatch call: the insertion of Point when
// Delete is false, or the deletion of tuple ID when Delete is true. Build
// them with Ins and Del.
type Update struct {
	Point  Point
	ID     int
	Delete bool
}

// Ins returns the Update inserting p (replacing any live tuple with the
// same ID).
func Ins(p Point) Update { return Update{Point: p} }

// Del returns the Update deleting tuple id.
func Del(id int) Update { return Update{ID: id, Delete: true} }

// ApplyBatch applies the updates in order and brings the answer up to
// date. It is equivalent to calling Insert/Delete once per update — same
// final answer, bit for bit — but the engine executes the per-utility
// top-k maintenance of each run of consecutive insertions, and likewise
// each run of consecutive deletions, in a single shard-parallel phase
// (deletions are tombstoned up front in an epoch-versioned tuple index and
// every repair requeries the database as it stood at its own operation),
// so large batches ingest at a multiple of the sequential rate on
// multi-core hosts. The whole batch is validated before any update is
// applied.
func (d *Dynamic) ApplyBatch(batch []Update) error {
	ops := make([]topk.Op, len(batch))
	for i, u := range batch {
		if u.Delete {
			ops[i] = topk.DeleteOp(u.ID)
			continue
		}
		if len(u.Point.Values) != d.dim {
			return fmt.Errorf("rms: batch[%d]: tuple has %d values, database has %d attributes", i, len(u.Point.Values), d.dim)
		}
		ops[i] = topk.InsertOp(toGeom(u.Point))
	}
	d.f.ApplyBatch(ops)
	return nil
}

// Result returns the current k-RMS answer (at most R tuples, ordered by
// ID).
func (d *Dynamic) Result() []Point { return fromGeoms(d.f.Result()) }

// Close releases the engine's persistent shard worker pool (started lazily
// by the first batch whose fan-out goes parallel). The instance remains
// usable afterwards — parallel phases simply run inline — so Close is a
// retirement call, not a shutdown: long-lived processes that build many
// instances should Close the ones they drop. Idempotent.
func (d *Dynamic) Close() { d.f.Close() }

// Len returns the current database size.
func (d *Dynamic) Len() int { return d.f.Len() }

// Contains reports whether a tuple with the given ID is live.
func (d *Dynamic) Contains(id int) bool { return d.f.Contains(id) }

// Stats reports maintenance internals (current utility-sample size m,
// cover size, stabilization work).
func (d *Dynamic) Stats() core.Stats { return d.f.Stats() }

// Algorithms lists the available static algorithm names for Compute, in
// the paper's order: Greedy, Greedy*, GeoGreedy, DMM-RRMS, DMM-Greedy,
// eps-Kernel, HS, Sphere — plus DP-2D for two-dimensional databases.
func Algorithms() []string {
	out := make([]string, 0, 9)
	for _, a := range baseline.All(1) {
		out = append(out, a.Name())
	}
	return append(out, "DP-2D")
}

// Compute runs a static k-RMS algorithm once over P and returns at most r
// tuples. See Algorithms for the recognized names. Algorithms defined only
// for k = 1 return an error for larger k.
func Compute(algorithm string, P []Point, dim, k, r int, seed int64) ([]Point, error) {
	alg, ok := baseline.ByName(algorithm, seed)
	if !ok {
		return nil, fmt.Errorf("rms: unknown algorithm %q (see rms.Algorithms)", algorithm)
	}
	if !alg.SupportsK(k) {
		return nil, fmt.Errorf("rms: algorithm %q does not support k = %d", algorithm, k)
	}
	return fromGeoms(alg.Compute(toGeoms(P), dim, k, r)), nil
}

// MaxRegretRatio estimates mrr_k(Q) over P with a sampled utility test set
// (the paper's evaluation methodology; the estimate is a lower bound that
// converges from below as samples grows).
func MaxRegretRatio(P, Q []Point, dim, k, samples int, seed int64) float64 {
	ev := regret.NewEvaluator(toGeoms(P), dim, k, samples, seed)
	return ev.MRR(toGeoms(Q))
}

// ExactMaxRegretRatio computes the exact mrr_1(Q) over P by linear
// programming (k = 1 only).
func ExactMaxRegretRatio(P, Q []Point) (float64, error) {
	return regret.ExactMRR1(toGeoms(P), toGeoms(Q))
}

// Skyline returns the Pareto-optimal tuples of P (larger is better on
// every attribute), ordered by ID. Every k-RMS answer is a subset of it.
func Skyline(P []Point) []Point {
	out := fromGeoms(skyline.Compute(toGeoms(P)))
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ComputeMinSize solves the dual (min-size) k-RMS problem: the smallest
// subset whose maximum k-regret ratio stays within eps, via the sampled
// hitting-set reduction of Agarwal et al. Use it when the tolerable regret
// is known and the answer size is the quantity to minimize.
func ComputeMinSize(P []Point, dim, k int, eps float64, seed int64) ([]Point, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("rms: eps = %v, need 0 < eps < 1", eps)
	}
	return fromGeoms(baseline.MinSize(toGeoms(P), dim, k, eps, 2000, seed)), nil
}

// UtilityClasses lists the nonlinear utility classes supported by
// ComputeNonlinear: "linear", "convex-L2", "convex-L4", "multiplicative".
// These extend k-RMS beyond linear preferences (the paper's future-work
// direction; see internal/nonlinear).
func UtilityClasses() []string {
	return []string{"linear", "convex-L2", "convex-L4", "multiplicative"}
}

func classByName(name string) (nonlinear.Class, error) {
	switch name {
	case "linear":
		return nonlinear.Linear{}, nil
	case "convex-L2":
		return nonlinear.ConvexLq{Q: 2}, nil
	case "convex-L4":
		return nonlinear.ConvexLq{Q: 4}, nil
	case "multiplicative":
		return nonlinear.Multiplicative{}, nil
	}
	return nil, fmt.Errorf("rms: unknown utility class %q (see rms.UtilityClasses)", name)
}

// ComputeNonlinear returns a k-RMS answer of at most r tuples under a
// nonlinear utility class, via the sampled hitting-set reduction.
func ComputeNonlinear(class string, P []Point, dim, k, r int, seed int64) ([]Point, error) {
	c, err := classByName(class)
	if err != nil {
		return nil, err
	}
	return fromGeoms(nonlinear.Compute(c, toGeoms(P), dim, k, r, 2000, seed)), nil
}

// MaxRegretRatioNonlinear estimates mrr_k(Q) over P under a nonlinear
// utility class.
func MaxRegretRatioNonlinear(class string, P, Q []Point, dim, k, samples int, seed int64) (float64, error) {
	c, err := classByName(class)
	if err != nil {
		return 0, err
	}
	ev := nonlinear.NewEvaluator(c, toGeoms(P), dim, k, samples, seed)
	return ev.MRR(toGeoms(Q)), nil
}
