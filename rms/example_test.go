package rms_test

import (
	"fmt"

	"fdrms/rms"
)

// The database of Fig. 1 of the paper: 8 tuples scored on two attributes.
func paperDatabase() []rms.Point {
	return []rms.Point{
		{ID: 1, Values: []float64{0.2, 1.0}},
		{ID: 2, Values: []float64{0.6, 0.8}},
		{ID: 3, Values: []float64{0.7, 0.5}},
		{ID: 4, Values: []float64{1.0, 0.1}},
		{ID: 5, Values: []float64{0.4, 0.3}},
		{ID: 6, Values: []float64{0.2, 0.7}},
		{ID: 7, Values: []float64{0.3, 0.9}},
		{ID: 8, Values: []float64{0.6, 0.6}},
	}
}

func ExampleNewDynamic() {
	// Maintain a 3-tuple representative set under updates (the paper's
	// Example 3: k=1, r=3).
	db, err := rms.NewDynamic(2, paperDatabase(), rms.Options{
		K: 1, R: 3, Epsilon: 0.002, MaxUtilities: 64, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("initial:", ids(db.Result()))

	db.Insert(rms.Point{ID: 9, Values: []float64{0.9, 0.6}})
	fmt.Println("after insert p9:", ids(db.Result()))

	db.Delete(1)
	fmt.Println("after delete p1:", ids(db.Result()))
	// Output:
	// initial: [1 2 4]
	// after insert p9: [1 4 9]
	// after delete p1: [4 7 9]
}

func ExampleCompute() {
	// One-shot static computation with the SPHERE algorithm.
	q, err := rms.Compute("Sphere", paperDatabase(), 2, 1, 3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(q) <= 3)
	// Output: true
}

func ExampleSkyline() {
	sky := rms.Skyline(paperDatabase())
	fmt.Println(ids(sky))
	// Output: [1 2 3 4 7]
}

func ExampleExactMaxRegretRatio() {
	p := paperDatabase()
	// The full skyline leaves zero regret for every linear preference.
	v, err := rms.ExactMaxRegretRatio(p, rms.Skyline(p))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", v)
	// Output: 0.0000
}

func ids(ps []rms.Point) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}
