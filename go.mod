module fdrms

go 1.22
